"""Common simulated-filesystem behaviour.

Files hold real ``bytes`` (snapshot images are actual pickles), and
every read/write is a blocking generator operation whose duration is
``size / bandwidth + op_latency``.  Directories are implicit (a path
prefix exists if any file lives under it) with an explicit-creation
option via ``mkdir`` markers, which snapshot directories use so that
empty snapshot dirs are visible before files land.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.simenv.kernel import Delay, SimGen
from repro.util.errors import VFSError
from repro.vfs import path as vpath

if TYPE_CHECKING:  # pragma: no cover
    from repro.simenv.kernel import Kernel


@dataclass(frozen=True)
class FileStat:
    path: str
    size: int
    mtime: float


class FS:
    """Base simulated filesystem."""

    def __init__(
        self,
        kernel: "Kernel",
        name: str,
        bandwidth_Bps: float = 100e6,
        op_latency_s: float = 1e-4,
    ):
        if bandwidth_Bps <= 0:
            raise VFSError("bandwidth must be positive")
        self.kernel = kernel
        self.name = name
        self.bandwidth_Bps = bandwidth_Bps
        self.op_latency_s = op_latency_s
        self.reachable = True
        self._files: dict[str, bytes] = {}
        self._mtimes: dict[str, float] = {}
        self._dirs: set[str] = {"/"}
        #: refcount of files living under each implicit directory, so
        #: ``isdir``/``exists`` misses are O(depth) dict probes instead
        #: of a scan over every file (the CAS probes absent blob paths
        #: constantly)
        self._file_dirs: dict[str, int] = {}
        self.bytes_read = 0
        self.bytes_written = 0
        #: transient fault windows (sim-time horizons; see
        #: ``inject_write_failures`` / ``inject_slowdown``)
        self._write_fail_until = 0.0
        self._slow_until = 0.0
        self._slow_factor = 1.0

    def _index_file(self, norm: str) -> None:
        d = vpath.dirname(norm)
        while d and d != "/":
            self._file_dirs[d] = self._file_dirs.get(d, 0) + 1
            d = vpath.dirname(d)

    def _unindex_file(self, norm: str) -> None:
        d = vpath.dirname(norm)
        while d and d != "/":
            count = self._file_dirs.get(d, 0) - 1
            if count <= 0:
                self._file_dirs.pop(d, None)
            else:
                self._file_dirs[d] = count
            d = vpath.dirname(d)

    # -- availability ---------------------------------------------------------

    def mark_unreachable(self) -> None:
        """The backing node died; all contents are lost to the job."""
        self.reachable = False

    def _check(self) -> None:
        if not self.reachable:
            raise VFSError(f"filesystem {self.name} is unreachable")

    # -- transient fault windows -----------------------------------------------

    def inject_write_failures(self, duration_s: float) -> None:
        """Writes fail with :class:`VFSError` for *duration_s* sim-seconds.

        Reads are unaffected (the disk array is degraded, not gone) and
        the window expires on its own — this models the transient
        stable-storage faults a staging pipeline must retry through,
        not permanent loss (``mark_unreachable``).
        """
        self._write_fail_until = max(
            self._write_fail_until, self.kernel.now + duration_s
        )

    def inject_slowdown(self, duration_s: float, factor: float) -> None:
        """Timed operations cost *factor*× for *duration_s* sim-seconds."""
        if factor <= 0:
            raise VFSError("slowdown factor must be positive")
        self._slow_until = max(self._slow_until, self.kernel.now + duration_s)
        self._slow_factor = factor

    def _check_write(self) -> None:
        if self.kernel.now < self._write_fail_until:
            raise VFSError(
                f"{self.name}: write failed (injected fault window)"
            )

    def _io_time(self, nbytes: int) -> float:
        """Cost of one timed operation moving *nbytes*.

        Subclasses override this (not ``read``/``write``) so batched
        operations price each file identically to a per-file loop.
        """
        base = self.op_latency_s + nbytes / self.bandwidth_Bps
        if self.kernel.now < self._slow_until:
            return base * self._slow_factor
        return base

    # -- blocking (timed) operations -------------------------------------------

    def write(self, path: str, data: bytes) -> SimGen:
        """Write (create or replace) a file."""
        self._check()
        self._check_write()
        if not isinstance(data, (bytes, bytearray)):
            raise VFSError(f"file data must be bytes, got {type(data).__name__}")
        norm = vpath.normalize(path)
        yield Delay(self._io_time(len(data)))
        self._check()
        self._check_write()
        if norm not in self._files:
            self._index_file(norm)
        self._files[norm] = bytes(data)
        self._mtimes[norm] = self.kernel.now
        self._dirs.add(vpath.dirname(norm))
        self.bytes_written += len(data)
        return len(data)

    def read(self, path: str) -> SimGen:
        """Read a whole file."""
        self._check()
        norm = vpath.normalize(path)
        if norm not in self._files:
            raise VFSError(f"{self.name}: no such file {norm}")
        data = self._files[norm]
        yield Delay(self._io_time(len(data)))
        self._check()
        self.bytes_read += len(data)
        return data

    def write_many(self, items: "list[tuple[str, bytes]]") -> SimGen:
        """Write several files under one aggregate delay.

        Total simulated time equals the per-file loop (each file still
        pays its own ``_io_time``), but the kernel processes one event
        instead of N — the batching half of the fast-path work (see
        docs/SIMULATOR.md).
        """
        self._check()
        self._check_write()
        normed: list[tuple[str, bytes]] = []
        total_time = 0.0
        for path, data in items:
            if not isinstance(data, (bytes, bytearray)):
                raise VFSError(
                    f"file data must be bytes, got {type(data).__name__}"
                )
            normed.append((vpath.normalize(path), bytes(data)))
            total_time += self._io_time(len(data))
        if total_time:
            yield Delay(total_time)
        self._check()
        self._check_write()
        written = 0
        for norm, data in normed:
            if norm not in self._files:
                self._index_file(norm)
            self._files[norm] = data
            self._mtimes[norm] = self.kernel.now
            self._dirs.add(vpath.dirname(norm))
            written += len(data)
        self.bytes_written += written
        return written

    def read_many(self, paths: "list[str]") -> SimGen:
        """Read several files under one aggregate delay.

        Returns the contents in input order; same total simulated time
        as a per-file ``read`` loop.
        """
        self._check()
        blobs: list[bytes] = []
        total_time = 0.0
        for path in paths:
            norm = vpath.normalize(path)
            if norm not in self._files:
                raise VFSError(f"{self.name}: no such file {norm}")
            data = self._files[norm]
            blobs.append(data)
            total_time += self._io_time(len(data))
        if total_time:
            yield Delay(total_time)
        self._check()
        self.bytes_read += sum(len(b) for b in blobs)
        return blobs

    def remove(self, path: str) -> SimGen:
        """Remove one file."""
        self._check()
        norm = vpath.normalize(path)
        if norm not in self._files:
            raise VFSError(f"{self.name}: no such file {norm}")
        yield Delay(self.op_latency_s)
        if norm in self._files:
            self._unindex_file(norm)
        self._files.pop(norm, None)
        self._mtimes.pop(norm, None)
        return None

    def remove_tree(self, prefix: str) -> SimGen:
        """Remove every file under *prefix* (and the dir markers)."""
        self._check()
        victims = self.list_tree(prefix)
        yield Delay(self.op_latency_s * max(1, len(victims)))
        for path in victims:
            if path in self._files:
                self._unindex_file(path)
            self._files.pop(path, None)
            self._mtimes.pop(path, None)
        norm = vpath.normalize(prefix)
        self._dirs = {d for d in self._dirs if not vpath.is_under(d, norm)}
        return len(victims)

    # -- instantaneous metadata operations --------------------------------------

    def mkdir(self, path: str) -> None:
        self._check()
        self._dirs.add(vpath.normalize(path))

    def exists(self, path: str) -> bool:
        self._check()
        norm = vpath.normalize(path)
        return norm in self._files or self.isdir(norm)

    def isdir(self, path: str) -> bool:
        self._check()
        norm = vpath.normalize(path)
        return norm in self._dirs or norm in self._file_dirs

    def stat(self, path: str) -> FileStat:
        self._check()
        norm = vpath.normalize(path)
        if norm not in self._files:
            raise VFSError(f"{self.name}: no such file {norm}")
        return FileStat(norm, len(self._files[norm]), self._mtimes[norm])

    def list_tree(self, prefix: str = "/") -> list[str]:
        """All file paths under *prefix*, sorted."""
        self._check()
        norm = vpath.normalize(prefix)
        return sorted(f for f in self._files if vpath.is_under(f, norm))

    def size_tree(self, prefix: str = "/") -> int:
        return sum(len(self._files[f]) for f in self.list_tree(prefix))

    # -- test/tool conveniences (untimed) --------------------------------------

    def peek(self, path: str) -> bytes:
        """Untimed read for tools and assertions."""
        self._check()
        norm = vpath.normalize(path)
        if norm not in self._files:
            raise VFSError(f"{self.name}: no such file {norm}")
        return self._files[norm]

    def poke(self, path: str, data: bytes) -> None:
        """Untimed write for test setup."""
        self._check()
        norm = vpath.normalize(path)
        if norm not in self._files:
            self._index_file(norm)
        self._files[norm] = bytes(data)
        self._mtimes[norm] = self.kernel.now
        self._dirs.add(vpath.dirname(norm))

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} {self.name} files={len(self._files)}>"
