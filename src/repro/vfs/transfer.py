"""Timed copies between simulated filesystems.

These are the primitives the FILEM components compose: ``copy_file``
reads from the source FS and writes to the destination FS (both
timed), optionally paying an extra per-byte network cost when the copy
crosses nodes — which is how the ``rsh`` FILEM component's remote
copies become more expensive than the ``shared`` component's
direct-to-stable-storage writes.
"""

from __future__ import annotations

from typing import Callable

from repro.simenv.kernel import Delay, SimGen
from repro.vfs.fsbase import FS
from repro.vfs import path as vpath


def copy_file(
    src_fs: FS,
    src_path: str,
    dst_fs: FS,
    dst_path: str,
    extra_net_Bps: float | None = None,
    extra_latency_s: float = 0.0,
    link_ok: Callable[[], None] | None = None,
) -> SimGen:
    """Copy one file; returns bytes copied.

    ``extra_net_Bps``/``extra_latency_s`` model an interposed network
    link (e.g. an rsh/scp stream between two nodes).  ``link_ok``, when
    given, is called before the stream and again before the destination
    write; it raises :class:`~repro.util.errors.NetworkError` when the
    link is partitioned, failing the copy mid-stage.
    """
    if link_ok is not None:
        link_ok()
    data = yield from src_fs.read(src_path)
    if extra_latency_s:
        yield Delay(extra_latency_s)
    if extra_net_Bps:
        yield Delay(len(data) / extra_net_Bps)
    if link_ok is not None:
        link_ok()
    yield from dst_fs.write(dst_path, data)
    return len(data)


def copy_tree(
    src_fs: FS,
    src_prefix: str,
    dst_fs: FS,
    dst_prefix: str,
    extra_net_Bps: float | None = None,
    extra_latency_s: float = 0.0,
    link_ok: Callable[[], None] | None = None,
) -> SimGen:
    """Copy every file under *src_prefix*; returns total bytes copied.

    The destination layout mirrors the source subtree under
    *dst_prefix*.  On a fast-path kernel the whole tree moves under
    three aggregate delays (batched read, network stream, batched
    write) whose total equals the per-file loop exactly — N files cost
    O(1) kernel events instead of O(N).
    """
    src_norm = vpath.normalize(src_prefix)
    paths = src_fs.list_tree(src_norm)
    dst_paths = []
    for path in paths:
        rel = path[len(src_norm):].lstrip("/")
        dst_paths.append(
            vpath.join(dst_prefix, rel)
            if rel
            else vpath.join(dst_prefix, vpath.basename(path))
        )

    if not src_fs.kernel.fast_paths:
        total = 0
        for path, dst_path in zip(paths, dst_paths):
            total += yield from copy_file(
                src_fs,
                path,
                dst_fs,
                dst_path,
                extra_net_Bps=extra_net_Bps,
                extra_latency_s=extra_latency_s,
                link_ok=link_ok,
            )
        return total

    if not paths:
        return 0
    if link_ok is not None:
        link_ok()
    blobs = yield from src_fs.read_many(paths)
    total = sum(len(b) for b in blobs)
    net_time = extra_latency_s * len(paths)
    if extra_net_Bps:
        net_time += total / extra_net_Bps
    if net_time:
        yield Delay(net_time)
    pairs = list(zip(dst_paths, blobs))
    # The per-file loop reads from the source until just before the
    # final write, so the last destination file doubles as the "copy
    # completed" marker (the staging retry logic relies on this).
    # Preserve that: write everything but the last file, re-check the
    # source, and only then write the marker — a source that died at
    # any point during the copy leaves the destination incomplete and
    # fails the batched form too.
    yield from dst_fs.write_many(pairs[:-1])
    src_fs._check()
    if link_ok is not None:
        link_ok()
    yield from dst_fs.write_many(pairs[-1:])
    return total
