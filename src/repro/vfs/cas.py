"""Content-addressed chunk store on a simulated filesystem.

The CRS layer already chunk-hashes every image for incremental
checkpointing; this module promotes those hashes into a cluster-wide
**content-addressed store** (CAS) on stable storage.  A chunk is
stored once under its SHA-256 digest no matter how many ranks,
intervals, or jobs produced it, and the FILEM offer/ship protocol
(:meth:`missing` is the store's half of the negotiation) moves only
chunks the store does not yet hold.

Layout on the backing filesystem (``<root>`` defaults to ``/cas``)::

    <root>/objects/<digest[:2]>/<digest>   one file per unique chunk
    <root>/refs/<owner-key>.json           one file per owner

Reference counting is *derived*, never stored: an **owner** (by
convention a snapshot rank directory such as
``/snapshots/ompi_global_snapshot_1.3/rank0``) registers the digests it
depends on in its ref file, and a chunk is live while any ref file
lists it.  :meth:`gc` deletes unreferenced blobs.  Because all state
lives on the filesystem, the store survives coordinator loss — any HNP
(or test) can re-open it by pointing at the same root.

Reads verify content: :meth:`get` re-hashes the blob and raises
:class:`~repro.util.errors.SnapshotError` on a mismatch, which is what
makes restart-time *per-chunk* verification (and retryable recovery)
possible.
"""

from __future__ import annotations

import hashlib
import json

from repro.simenv.kernel import Delay, SimGen
from repro.util.errors import SnapshotError, VFSError
from repro.vfs import path as vpath
from repro.vfs.fsbase import FS

DEFAULT_ROOT = "/cas"
OBJECTS_DIR = "objects"
REFS_DIR = "refs"


def chunk_digest(data: bytes) -> str:
    """The store's content address: SHA-256 hex (matches the CRS
    manifest hashes, so capture-side manifests are CAS-ready)."""
    return hashlib.sha256(data).hexdigest()


class ChunkStore:
    """Hash-addressed blob store with derived refcounts and GC."""

    def __init__(self, fs: FS, root: str = DEFAULT_ROOT):
        self.fs = fs
        self.root = vpath.normalize(root)
        fs.mkdir(self.root)

    # -- paths -----------------------------------------------------------------

    def blob_path(self, digest: str) -> str:
        return vpath.join(self.root, OBJECTS_DIR, digest[:2], digest)

    def _ref_path(self, owner: str) -> str:
        # Owners are arbitrary paths; key the ref file by a digest of
        # the owner name so no quoting scheme can collide.
        key = hashlib.sha256(owner.encode()).hexdigest()[:32]
        return vpath.join(self.root, REFS_DIR, f"{key}.json")

    # -- negotiation (untimed metadata) ------------------------------------------

    def has(self, digest: str) -> bool:
        return self.fs.exists(self.blob_path(digest))

    def missing(self, digests: list[str]) -> list[str]:
        """The store's answer to an offer: which of *digests* it lacks.

        Deduplicates while preserving first-seen order, so the caller
        can ship the result as-is.
        """
        return [d for d in dict.fromkeys(digests) if not self.has(d)]

    # -- blobs (timed) -----------------------------------------------------------

    def put(self, digest: str, data: bytes) -> SimGen:
        """Store one chunk; returns bytes written (0 on a dedup hit).

        The digest is recomputed before storing — a corrupt payload
        must not poison the address it claims.
        """
        if chunk_digest(data) != digest:
            raise SnapshotError(
                f"chunk payload does not match digest {digest[:12]}…"
            )
        if self.has(digest):
            yield Delay(self.fs.op_latency_s)
            return 0
        written = yield from self.fs.write(self.blob_path(digest), data)
        return written

    def put_many(self, chunks: "list[tuple[str, bytes]]") -> SimGen:
        """Store several chunks under one aggregate delay.

        Returns total bytes written (dedup hits contribute 0 but still
        pay one ``op_latency`` each, exactly like a :meth:`put` loop).
        Duplicate digests within the batch count as hits after the
        first occurrence.
        """
        hit_time = 0.0
        fresh: list[tuple[str, bytes]] = []
        seen: set[str] = set()
        for digest, data in chunks:
            if chunk_digest(data) != digest:
                raise SnapshotError(
                    f"chunk payload does not match digest {digest[:12]}…"
                )
            if digest in seen or self.has(digest):
                hit_time += self.fs.op_latency_s
            else:
                seen.add(digest)
                fresh.append((self.blob_path(digest), data))
        if hit_time:
            yield Delay(hit_time)
        if fresh:
            written = yield from self.fs.write_many(fresh)
        else:
            written = 0
        return written

    def get_many(self, digests: "list[str]") -> SimGen:
        """Read and verify several chunks under one aggregate delay.

        Returns the blobs in input order; duplicate digests are read
        once and fanned back out (a repeated chunk is one store blob).
        """
        unique = list(dict.fromkeys(digests))
        for digest in unique:
            if not self.fs.exists(self.blob_path(digest)):
                raise SnapshotError(f"chunk {digest[:12]}… absent from store")
        blobs = yield from self.fs.read_many(
            [self.blob_path(d) for d in unique]
        )
        by_digest: dict[str, bytes] = {}
        for digest, data in zip(unique, blobs):
            if chunk_digest(data) != digest:
                raise SnapshotError(f"chunk {digest[:12]}… fails verification")
            by_digest[digest] = data
        return [by_digest[d] for d in digests]

    def get(self, digest: str) -> SimGen:
        """Read and verify one chunk; raises ``SnapshotError`` when the
        chunk is absent or its content no longer matches its address."""
        path = self.blob_path(digest)
        if not self.fs.exists(path):
            raise SnapshotError(f"chunk {digest[:12]}… absent from store")
        data = yield from self.fs.read(path)
        if chunk_digest(data) != digest:
            raise SnapshotError(f"chunk {digest[:12]}… fails verification")
        return data

    # -- references --------------------------------------------------------------

    def add_refs(self, owner: str, digests: list[str]) -> SimGen:
        """Register *owner*'s dependency on *digests* (merged, idempotent)."""
        path = self._ref_path(owner)
        merged: list[str] = []
        if self.fs.exists(path):
            raw = yield from self.fs.read(path)
            merged = json.loads(raw.decode())["digests"]
        merged = list(dict.fromkeys(merged + list(digests)))
        payload = json.dumps({"owner": owner, "digests": merged}).encode()
        yield from self.fs.write(path, payload)
        return len(merged)

    def release(self, owner: str) -> SimGen:
        """Drop *owner*'s references (no-op if it holds none)."""
        path = self._ref_path(owner)
        if self.fs.exists(path):
            yield from self.fs.remove(path)
        else:
            yield Delay(self.fs.op_latency_s)
        return None

    def owners(self) -> list[str]:
        """Every owner currently holding references (untimed scan)."""
        refs_root = vpath.join(self.root, REFS_DIR)
        return sorted(
            json.loads(self.fs.peek(p).decode())["owner"]
            for p in self.fs.list_tree(refs_root)
        )

    def referenced(self) -> set[str]:
        """The union of every owner's digests (untimed scan)."""
        refs_root = vpath.join(self.root, REFS_DIR)
        live: set[str] = set()
        for path in self.fs.list_tree(refs_root):
            live.update(json.loads(self.fs.peek(path).decode())["digests"])
        return live

    def refcount(self, digest: str) -> int:
        """How many owners reference *digest* (untimed, for tests/tools)."""
        refs_root = vpath.join(self.root, REFS_DIR)
        return sum(
            digest in json.loads(self.fs.peek(p).decode())["digests"]
            for p in self.fs.list_tree(refs_root)
        )

    # -- garbage collection ------------------------------------------------------

    def gc(self) -> SimGen:
        """Delete unreferenced blobs; returns ``(removed, freed_bytes)``."""
        live = self.referenced()
        removed = 0
        freed = 0
        for path in self.fs.list_tree(vpath.join(self.root, OBJECTS_DIR)):
            digest = vpath.basename(path)
            if digest in live:
                continue
            try:
                freed += self.fs.stat(path).size
                yield from self.fs.remove(path)
                removed += 1
            except VFSError:
                continue
        return removed, freed

    # -- introspection -----------------------------------------------------------

    def stats(self) -> dict:
        """Blob count / stored bytes / reference counts (untimed)."""
        objects = self.fs.list_tree(vpath.join(self.root, OBJECTS_DIR))
        return {
            "blobs": len(objects),
            "stored_bytes": sum(self.fs.stat(p).size for p in objects),
            "owners": len(self.fs.list_tree(vpath.join(self.root, REFS_DIR))),
            "referenced": len(self.referenced()),
        }
