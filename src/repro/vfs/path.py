"""Path helpers for the simulated filesystems.

Paths are ``/``-separated, always absolute (leading ``/``), with no
``.``/``..`` components after normalization.  Kept separate from
:mod:`os.path` so simulated paths never collide with host paths.
"""

from __future__ import annotations

from functools import lru_cache

from repro.util.errors import VFSError


@lru_cache(maxsize=1 << 16)
def _normalize_cached(path: str) -> str:
    parts: list[str] = []
    for part in path.split("/"):
        if part in ("", "."):
            continue
        if part == "..":
            if not parts:
                raise VFSError(f"path escapes root: {path!r}")
            parts.pop()
        else:
            parts.append(part)
    return "/" + "/".join(parts)


def normalize(path: str) -> str:
    """Normalize to a canonical absolute path.

    Pure string → string, so results are memoized — the VFS normalizes
    the same snapshot/CAS paths millions of times in a fleet run.
    """
    if not isinstance(path, str) or not path:
        raise VFSError(f"bad path: {path!r}")
    return _normalize_cached(path)


def join(*parts: str) -> str:
    """Join path components and normalize."""
    if not parts:
        raise VFSError("join() needs at least one component")
    return normalize("/".join(p.strip("/") if i else p for i, p in enumerate(parts)))


def split(path: str) -> tuple[str, str]:
    """Split into (dirname, basename)."""
    norm = normalize(path)
    if norm == "/":
        return "/", ""
    head, _, tail = norm.rpartition("/")
    return (head or "/", tail)


def dirname(path: str) -> str:
    return split(path)[0]


def basename(path: str) -> str:
    return split(path)[1]


def is_under(path: str, prefix: str) -> bool:
    """True if *path* is *prefix* or inside it."""
    p, pre = normalize(path), normalize(prefix)
    return p == pre or p.startswith(pre.rstrip("/") + "/")
