"""Per-node local disk.

Fast to write (no network hop) but *not* stable storage: contents are
lost when the owning node crashes.  Local snapshots are written here
first and gathered to :class:`repro.vfs.sharedfs.SharedFS` by FILEM.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.vfs.fsbase import FS

if TYPE_CHECKING:  # pragma: no cover
    from repro.simenv.node import Node


class LocalFS(FS):
    """Local disk of a single node."""

    def __init__(self, node: "Node", bandwidth_Bps: float = 80e6, op_latency_s: float = 5e-3):
        super().__init__(
            node.kernel,
            name=f"local:{node.name}",
            bandwidth_Bps=bandwidth_Bps,
            op_latency_s=op_latency_s,
        )
        self.node = node
        node.local_fs = self
