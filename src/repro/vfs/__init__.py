"""Simulated storage: per-node local disks and shared stable storage.

The paper's snapshot life cycle writes local snapshots to each node's
local disk and then gathers them (via FILEM) to *stable storage* — a
shared RAID filesystem that survives node failures (paper section 5.2).
Both filesystem kinds share one interface (:class:`repro.vfs.fsbase.FS`)
with timed read/write operations, so the FILEM components can be
compared on equal footing.
"""

from repro.vfs.cas import ChunkStore, chunk_digest
from repro.vfs.fsbase import FS, FileStat
from repro.vfs.localfs import LocalFS
from repro.vfs.sharedfs import SharedFS
from repro.vfs.path import basename, dirname, join, normalize, split
from repro.vfs.transfer import copy_file, copy_tree

__all__ = [
    "FS",
    "FileStat",
    "ChunkStore",
    "chunk_digest",
    "LocalFS",
    "SharedFS",
    "basename",
    "dirname",
    "join",
    "normalize",
    "split",
    "copy_file",
    "copy_tree",
]
