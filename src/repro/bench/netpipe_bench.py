"""NetPIPE experiment drivers (paper section 7 / E1, E2).

The paper measured the latency and bandwidth overhead the C/R
infrastructure adds to MPI communication: ~3% latency for small
messages (attributed to function-call overhead of the interposition
layers), 0% for large messages, and 0% bandwidth overhead.

Our analogue measures the same quantity in this reproduction's terms:
the *wall-clock* cost per message of driving the simulated MPI stack,
with and without the CRCP wrapper PML interposed.  Small messages are
dominated by per-call bookkeeping — exactly where interposition hurts;
large messages are dominated by payload copies, which amortize it away.

``netpipe_simtime_series`` additionally reports the simulated
latency/bandwidth curves (the NetPIPE figure itself) per fabric.
"""

from __future__ import annotations

import time

from repro.bench.harness import fresh_universe
from repro.tools.api import ompi_run

#: the three builds the paper compares
CONFIGS = {
    "no-ft": {"ompi_cr_enabled": "0"},
    "ft+none": {"crcp": "none"},
    "ft+coord": {"crcp": "coord"},
}


def _run_netpipe(params: dict, sizes: list[int], reps: int, warmup: bool = True) -> tuple[float, list]:
    """Run one NetPIPE job; returns (wall_seconds, simtime_series)."""
    universe = fresh_universe(2, params)
    if warmup:
        ompi_run(universe, "ring", 2, args={"laps": 1})
    start = time.perf_counter()
    job = ompi_run(
        universe, "netpipe", 2, args={"sizes": sizes, "reps_per_size": reps}
    )
    wall = time.perf_counter() - start
    return wall, job.results[0]["series"]


def netpipe_wallclock_overhead(
    small_size: int = 64,
    large_size: int = 1 << 20,
    small_reps: int = 1200,
    large_reps: int = 150,
    trials: int = 5,
) -> dict:
    """E1 core measurement.

    Wall-clock cost per ping-pong for a small and a large message, per
    build.  Trials are interleaved across configs with GC disabled and
    the minimum kept — the minimum is the least-noise sample.  The
    expected shape (paper section 7): a few percent added cost for
    small messages (pure interposition / function-call overhead),
    decaying toward zero for large messages whose per-message work is
    dominated by the rendezvous protocol and payload handling.
    """
    import gc
    import statistics

    samples: dict[str, dict[str, list[float]]] = {
        name: {"small": [], "large": []} for name in CONFIGS
    }
    #: per-trial overhead ratios vs the adjacent no-ft run — the paired
    #: design cancels slow machine-load drift that otherwise swamps a
    #: percent-level comparison
    ratios: dict[str, dict[str, list[float]]] = {
        name: {"small": [], "large": []}
        for name in CONFIGS
        if name != "no-ft"
    }
    gc_was_enabled = gc.isenabled()
    # One throwaway pass to warm imports and code paths.
    for params in CONFIGS.values():
        _run_netpipe(params, [small_size], 10)
    gc.disable()
    try:
        for _ in range(trials):
            trial: dict[str, dict[str, float]] = {}
            for name, params in CONFIGS.items():
                wall, _ = _run_netpipe(params, [small_size], small_reps)
                small = wall / small_reps
                wall, _ = _run_netpipe(params, [large_size], large_reps)
                large = wall / large_reps
                trial[name] = {"small": small, "large": large}
                samples[name]["small"].append(small)
                samples[name]["large"].append(large)
            for name in ratios:
                for label in ("small", "large"):
                    ratios[name][label].append(
                        trial[name][label] / trial["no-ft"][label]
                    )
    finally:
        if gc_was_enabled:
            gc.enable()

    results = {
        name: {label: min(vals) for label, vals in by_size.items()}
        for name, by_size in samples.items()
    }
    return {
        "per_msg_wall_s": results,
        "overhead_pct": {
            config: {
                label: 100.0 * (statistics.median(vals) - 1.0)
                for label, vals in by_size.items()
            }
            for config, by_size in ratios.items()
        },
        "sizes": {"small": small_size, "large": large_size},
        "reps": {"small": small_reps, "large": large_reps},
    }


def netpipe_callcount_overhead(
    small_size: int = 64, large_size: int = 1 << 20, reps: int = 60
) -> dict:
    """E1's deterministic core: function calls per ping-pong.

    The paper attributes its ~3% small-message overhead to "function
    call overhead"; this measures exactly that quantity — the number of
    Python function activations per message with and without the C/R
    interposition — free of timing noise.
    """
    import sys

    def count_calls(params: dict, size: int) -> float:
        # Measure the marginal cost of extra reps so job setup/teardown
        # cancels out: calls(2*reps) - calls(reps) == reps messages.
        # A throwaway run first so one-time lazy imports don't pollute
        # the margin.
        _run_netpipe(params, [size], 2, warmup=False)
        totals = []
        for n in (reps, 2 * reps):
            counter = {"n": 0}

            def profiler(frame, event, arg):
                if event == "call":
                    counter["n"] += 1

            sys.setprofile(profiler)
            try:
                _run_netpipe(params, [size], n, warmup=False)
            finally:
                sys.setprofile(None)
            totals.append(counter["n"])
        return (totals[1] - totals[0]) / reps

    per_msg = {
        name: {
            "small": count_calls(params, small_size),
            "large": count_calls(params, large_size),
        }
        for name, params in CONFIGS.items()
    }
    base = per_msg["no-ft"]
    return {
        "calls_per_msg": per_msg,
        "overhead_pct": {
            config: {
                label: 100.0 * (per_msg[config][label] - base[label]) / base[label]
                for label in ("small", "large")
            }
            for config in ("ft+none", "ft+coord")
        },
    }


def netpipe_bandwidth_overhead(
    size: int = 1 << 22, reps: int = 30, trials: int = 5
) -> dict:
    """E2: bandwidth = bytes moved per wall-clock second at 4 MiB.

    Paired per-trial ratios against the adjacent no-FT run cancel
    machine-load drift; the median ratio is reported.
    """
    import statistics

    rates: dict[str, list[float]] = {name: [] for name in CONFIGS}
    ratios: dict[str, list[float]] = {
        name: [] for name in CONFIGS if name != "no-ft"
    }
    for params in CONFIGS.values():
        _run_netpipe(params, [size], 2)  # warm code paths
    for _ in range(trials):
        trial: dict[str, float] = {}
        for name, params in CONFIGS.items():
            wall, _ = _run_netpipe(params, [size], reps)
            trial[name] = size * reps / wall
            rates[name].append(trial[name])
        for name in ratios:
            ratios[name].append(trial[name] / trial["no-ft"])
    return {
        "wall_bandwidth_Bps": {name: max(vals) for name, vals in rates.items()},
        "overhead_pct": {
            config: 100.0 * (1.0 - statistics.median(vals))
            for config, vals in ratios.items()
        },
        "size": size,
        "reps": reps,
    }


def netpipe_simtime_series(
    sizes: list[int] | None = None, reps: int = 5, btl: str | None = None
) -> list[tuple[int, float, float]]:
    """The NetPIPE figure: simulated half-RTT and bandwidth vs size.

    ``btl`` restricts the fabric (``"tcp"`` forces Ethernet; default
    lets IB win), reproducing the testbed's two interconnects.
    """
    sizes = sizes or [1 << i for i in range(0, 23, 2)]
    params: dict = {}
    if btl is not None:
        params["btl"] = f"{btl},sm"
    _wall, series = _run_netpipe(params, sizes, reps, warmup=False)
    return series
