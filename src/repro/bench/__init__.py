"""Benchmark harness: experiment drivers for the paper's evaluation.

One function per experiment (E1–E7, see DESIGN.md section 4); the
``benchmarks/`` pytest-benchmark targets call these and print the
paper-style tables.  Everything here is also importable from notebooks
or scripts.
"""

from repro.bench.harness import (
    Row,
    format_table,
    fresh_universe,
    run_and_checkpoint,
    timed,
)
from repro.bench.netpipe_bench import (
    netpipe_bandwidth_overhead,
    netpipe_simtime_series,
    netpipe_wallclock_overhead,
)

__all__ = [
    "Row",
    "format_table",
    "fresh_universe",
    "run_and_checkpoint",
    "timed",
    "netpipe_bandwidth_overhead",
    "netpipe_simtime_series",
    "netpipe_wallclock_overhead",
]
