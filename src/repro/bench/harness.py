"""Shared measurement utilities for the experiment suite."""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.mca.params import MCAParams
from repro.obs.report import filter_spans, phase_rows
from repro.orte.universe import Universe
from repro.simenv.cluster import Cluster, ClusterSpec
from repro.simenv.kernel import WaitEvent
from repro.tools.api import ompi_checkpoint, ompi_run


@dataclass
class Row:
    """One output row of an experiment table."""

    label: str
    values: dict[str, Any] = field(default_factory=dict)


def format_table(title: str, columns: list[str], rows: list[Row]) -> str:
    """Render a monospace table like the paper's result listings."""
    widths = {col: len(col) for col in columns}
    label_width = max([len("config")] + [len(r.label) for r in rows])
    rendered: list[list[str]] = []
    for row in rows:
        cells = []
        for col in columns:
            value = row.values.get(col, "")
            text = f"{value:.4g}" if isinstance(value, float) else str(value)
            widths[col] = max(widths[col], len(text))
            cells.append(text)
        rendered.append(cells)
    lines = [f"== {title} =="]
    header = "config".ljust(label_width) + "  " + "  ".join(
        col.rjust(widths[col]) for col in columns
    )
    lines.append(header)
    lines.append("-" * len(header))
    for cells, row in zip(rendered, rows):
        lines.append(
            row.label.ljust(label_width)
            + "  "
            + "  ".join(cell.rjust(widths[col]) for cell, col in zip(cells, columns))
        )
    return "\n".join(lines)


def fresh_universe(
    n_nodes: int = 4, params: dict | None = None, **spec_kwargs
) -> Universe:
    spec = ClusterSpec(n_nodes=n_nodes, **spec_kwargs)
    return Universe(Cluster(spec), MCAParams(params or {}))


def timed(fn: Callable[[], Any]) -> tuple[Any, float]:
    """Run a closure and return (result, wall_clock_seconds)."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def phase_table_rows(trace: dict, phases: list[str] | None = None) -> list[Row]:
    """Per-phase breakdown of a trace export as table :class:`Row` s."""
    return [
        Row(
            phase,
            {"count": count, "sim (ms)": sim_s * 1e3, "wall (ms)": wall_s * 1e3},
        )
        for phase, count, sim_s, wall_s in phase_rows(trace, phases)
    ]


PHASE_COLUMNS = ["count", "sim (ms)", "wall (ms)"]


def write_bench_json(filename: str, payload: dict) -> str:
    """Persist an experiment's machine-readable results.

    Written into the current working directory (the repo root under
    CI, which uploads ``BENCH_*.json`` as build artifacts).
    """
    path = os.path.join(os.getcwd(), filename)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path


def stable_commit_latency_s(trace: dict, at: float) -> float:
    """Request-to-stable-commit latency from a traced run.

    The checkpoint reply returns as soon as the job resumes (the
    app-blocked window); the interval is only durable when its
    background ``snapc.stage`` span closes.  Returns the time from the
    request to the end of the last stage span, or NaN if none ran.
    """
    stages = filter_spans(trace, name="snapc.stage")
    if not stages:
        return float("nan")
    return max(s["t0"] + s["dur"] for s in stages) - at


def run_and_checkpoint(
    app: str,
    np: int,
    app_args: dict,
    at: float,
    n_nodes: int = 4,
    params: dict | None = None,
    trace: bool = False,
    **ckpt_options,
) -> tuple[Universe, dict]:
    """Launch *app*, checkpoint it at sim-time *at*, run to completion.

    Returns ``(universe, measurement)`` where the measurement carries
    the *simulated* checkpoint latency — request departure to
    global-snapshot-reference reply.  Under asynchronous staging that
    reply arrives once every local snapshot is written and the job has
    resumed, so this is the **app-blocked** window (also exposed as
    ``"app_blocked_s"``).  With ``trace=True`` the universe runs with
    the span recorder on and the measurement gains a ``"trace"`` key
    plus ``"stable_commit_s"`` — request to the end of the background
    ``snapc.stage`` span, the end-to-end durability latency.
    """
    if trace:
        params = dict(params or {})
        params.setdefault("obs_trace_enabled", "1")
    universe = fresh_universe(n_nodes, params)
    job = ompi_run(universe, app, np, args=app_args, wait=False)
    handle = ompi_checkpoint(universe, job.jobid, at=at, wait=False, **ckpt_options)
    finish: dict[str, float] = {}

    def watch():
        # handle.done is created when the tool thread starts (at time
        # `at`); poll cheaply until then, then wait for the reply.
        from repro.simenv.kernel import Delay

        while handle.done is None:
            yield Delay(1e-4)
        yield WaitEvent(handle.done)
        finish["t"] = universe.kernel.now
        return None

    universe.kernel.spawn(watch(), name="bench-watch", daemon=True)
    universe.run_job_to_completion(job)
    reply = handle.result()
    latency = finish.get("t", float("nan")) - at
    measurement = {
        "ok": reply.get("ok", False),
        "error": reply.get("error"),
        "snapshot": reply.get("snapshot"),
        "sim_latency_s": latency,
        "app_blocked_s": latency,
        "job_state": job.state.value,
    }
    if trace:
        measurement["trace"] = universe.kernel.tracer.to_dict()
        measurement["stable_commit_s"] = stable_commit_latency_s(
            measurement["trace"], at
        )
    return universe, measurement
