"""Periodic checkpoint service.

The paper motivates asynchronous checkpointing with "support services
(e.g., schedulers) [having] the ability to checkpoint a user's job for
various reasons" (§1).  This module is such a support service: it arms
a timer against the simulated clock and requests a checkpoint of a job
every ``interval_s``, skipping cycles while a previous request is still
in flight and stopping automatically when the job reaches a terminal
state.

Usage::

    service = PeriodicCheckpointer(universe, job.jobid, interval_s=0.2)
    service.start(first_at=0.1)
    universe.run_job_to_completion(job)
    print(service.taken)        # snapshot paths, in interval order
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.tools.api import ompi_checkpoint
from repro.util.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover
    from repro.orte.universe import Universe

log = get_logger("tools.scheduler")


class PeriodicCheckpointer:
    """Checkpoints one job on a fixed simulated-time cadence."""

    def __init__(
        self,
        universe: "Universe",
        jobid: int,
        interval_s: float,
        max_checkpoints: int | None = None,
    ):
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        self.universe = universe
        self.jobid = jobid
        self.interval_s = interval_s
        self.max_checkpoints = max_checkpoints
        #: snapshot paths of successful checkpoints, in order
        self.taken: list[str] = []
        #: error strings of failed attempts (job finished, veto, ...)
        self.failures: list[str] = []
        self._inflight = False
        self._stopped = False

    # -- control -----------------------------------------------------------

    def start(self, first_at: float | None = None) -> "PeriodicCheckpointer":
        """Arm the first tick (defaults to one interval from now)."""
        kernel = self.universe.kernel
        when = first_at if first_at is not None else kernel.now + self.interval_s
        kernel.call_at(when, self._tick)
        return self

    def stop(self) -> None:
        self._stopped = True

    @property
    def active(self) -> bool:
        return not self._stopped

    # -- internals ------------------------------------------------------------

    def _job_running(self) -> bool:
        job = self.universe.jobs.get(self.jobid)
        return job is not None and not job.is_done

    def _tick(self) -> None:
        if self._stopped or not self._job_running():
            self._stopped = True
            return
        if not self._inflight:
            self._fire()
        self.universe.kernel.call_later(self.interval_s, self._tick)

    def _fire(self) -> None:
        self._inflight = True
        handle = ompi_checkpoint(self.universe, self.jobid, at=None, wait=False)

        def on_done():
            from repro.simenv.kernel import Delay, WaitEvent

            while handle.done is None:
                yield Delay(1e-4)
            yield WaitEvent(handle.done)
            self._inflight = False
            reply = handle.reply or {}
            if reply.get("ok"):
                self.taken.append(reply["snapshot"])
                if (
                    self.max_checkpoints is not None
                    and len(self.taken) >= self.max_checkpoints
                ):
                    self._stopped = True
            else:
                self.failures.append(reply.get("error", "unknown"))
            return None

        self.universe.kernel.spawn(
            on_done(), name=f"ckpt-scheduler-{self.jobid}", daemon=True
        )
