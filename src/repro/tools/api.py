"""Programmatic tool API.

Every tool creates a short-lived *tool process* on the first node,
sends its request to the HNP over RML, and waits for the reply —
structurally identical to the paper's command-line tools connecting to
mpirun.  Requests can be fired immediately (driving the kernel to
completion) or scheduled at a simulated time while a job runs
(``at=``), which is how the tests model "a system administrator
checkpoints a running job".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.orte.job import AppSpec, Job
from repro.orte.oob import (
    RML,
    TAG_CKPT_REPLY,
    TAG_CKPT_REQUEST,
    TAG_MIGRATE_REPLY,
    TAG_MIGRATE_REQUEST,
    TAG_PS_REPLY,
    TAG_PS_REQUEST,
    TAG_RESTART_REPLY,
    TAG_RESTART_REQUEST,
)
from repro.simenv.kernel import SimGen
from repro.simenv.process import SimProcess
from repro.snapshot import GlobalSnapshotRef
from repro.util.errors import CheckpointError, ReproError, RestartError
from repro.util.ids import hnp_name

if TYPE_CHECKING:  # pragma: no cover
    from repro.mca.params import MCAParams
    from repro.orte.universe import Universe


@dataclass
class ToolHandle:
    """Future-like handle for an asynchronous tool invocation."""

    universe: "Universe"
    done: Any = None  # SimEvent
    reply: dict | None = None

    def result(self) -> dict:
        """Reply payload; raises if the tool has not completed."""
        if self.reply is None:
            raise ReproError("tool has not completed yet")
        return self.reply

    def wait(self) -> dict:
        """Drive the kernel until the tool completes.

        NOTE: each ``kernel.run()`` drains every ready event, so by the
        time the reply is visible the simulation may have advanced well
        past it (jobs may have finished).  Use :meth:`wait_stepped` to
        stop close to the reply instant.
        """
        kernel = self.universe.kernel
        while self.reply is None:
            if not kernel.pending:
                raise ReproError("tool cannot complete: simulation drained")
            kernel.run()
        return self.reply

    def wait_stepped(self, step: float = 0.02) -> dict:
        """Drive the kernel in *step*-sized slices until the reply
        lands, leaving the simulation within one step of that moment."""
        kernel = self.universe.kernel
        while self.reply is None:
            if not kernel.pending:
                raise ReproError("tool cannot complete: simulation drained")
            kernel.run(until=kernel.now + step)
        return self.reply


def _tool_session(
    universe: "Universe", tag: str, payload: dict, reply_tag: str, handle: ToolHandle
) -> SimGen:
    # Tools connect from the first node still up: after an HNP-node
    # crash and failover, node 0 may be dead while the universe lives on.
    host = next(
        (node for node in universe.cluster.nodes if node.up),
        universe.cluster.nodes[0],
    )
    proc = SimProcess(host, universe.new_tool_name(), label="tool")
    universe.register(proc)
    rml = RML(universe, proc)
    try:
        _, reply = yield from rml.rpc(hnp_name(), tag, payload, reply_tag)
        handle.reply = reply
    finally:
        rml.close()
        universe.deregister(proc.name)
        proc.exit(None)
    return handle.reply


def _launch_tool(
    universe: "Universe",
    tag: str,
    payload: dict,
    reply_tag: str,
    at: float | None,
) -> ToolHandle:
    handle = ToolHandle(universe)
    kernel = universe.kernel

    def start() -> None:
        thread = kernel.spawn(
            _tool_session(universe, tag, payload, reply_tag, handle),
            name=f"tool-{tag}",
        )
        handle.done = thread.done

    if at is None:
        start()
    else:
        kernel.call_at(at, start)
    return handle


# ---------------------------------------------------------------------------
# Public tools
# ---------------------------------------------------------------------------


def ompi_run(
    universe: "Universe",
    app_name: str,
    np: int,
    args: dict | None = None,
    params: "MCAParams | None" = None,
    wait: bool = True,
) -> Job:
    """Launch an MPI job (mpirun).  With ``wait=True`` the kernel runs
    until the job reaches a terminal state."""
    job = universe.submit(AppSpec(app_name, dict(args or {})), np, params)
    if wait:
        universe.run_job_to_completion(job)
    return job


def ompi_checkpoint(
    universe: "Universe",
    jobid: int,
    at: float | None = None,
    terminate: bool = False,
    wait: bool | None = None,
    wait_stable: bool = False,
    **options,
) -> ToolHandle:
    """Checkpoint a running job.

    ``at=None`` fires now; ``wait`` defaults to True when firing now.
    The reply carries the global snapshot reference path.  By default
    the reply arrives as soon as every local snapshot is written and
    the job has resumed; ``wait_stable=True`` restores the old
    synchronous behaviour (reply only after the global snapshot is
    committed to stable storage).
    """
    opts = dict(options)
    opts["terminate"] = terminate
    if wait_stable:
        opts["wait_stable"] = True
    handle = _launch_tool(
        universe,
        TAG_CKPT_REQUEST,
        {"jobid": jobid, "options": opts},
        TAG_CKPT_REPLY,
        at,
    )
    if wait is None:
        wait = at is None
    if wait:
        handle.wait()
        if not handle.reply.get("ok"):
            raise CheckpointError(handle.reply.get("error", "checkpoint failed"))
    return handle


def checkpoint_ref(handle: ToolHandle) -> GlobalSnapshotRef:
    """Extract the global snapshot reference from a checkpoint reply."""
    reply = handle.result()
    if not reply.get("ok"):
        raise CheckpointError(reply.get("error", "checkpoint failed"))
    return GlobalSnapshotRef(reply["snapshot"])


def ompi_restart(
    universe: "Universe",
    snapshot: "GlobalSnapshotRef | str",
    at: float | None = None,
    wait: bool = True,
    **options,
) -> "Job | ToolHandle":
    """Restart a job from a global snapshot reference.

    With ``wait=True`` returns the restarted :class:`Job` after it
    finishes; otherwise returns the :class:`ToolHandle` (its reply
    carries the new jobid).
    """
    path = snapshot.path if isinstance(snapshot, GlobalSnapshotRef) else snapshot
    handle = _launch_tool(
        universe,
        TAG_RESTART_REQUEST,
        {"snapshot": path, "options": dict(options)},
        TAG_RESTART_REPLY,
        at,
    )
    if not wait:
        return handle
    handle.wait()
    reply = handle.result()
    if not reply.get("ok"):
        raise RestartError(reply.get("error", "restart failed"))
    job = universe.job(reply["jobid"])
    universe.run_job_to_completion(job)
    return job


def ompi_migrate(
    universe: "Universe",
    jobid: int,
    placement: dict[int, str],
    at: float | None = None,
    wait: bool = True,
) -> "Job | ToolHandle":
    """Migrate a running job's ranks onto different nodes.

    Implemented as the paper's section-8 extension: checkpoint the job
    to stable storage, let its processes terminate, and restart it with
    the requested ``rank -> node`` placement (ranks not listed keep
    their usual placement preference).  With ``wait=True`` returns the
    migrated :class:`Job` after it finishes.
    """
    handle = _launch_tool(
        universe,
        TAG_MIGRATE_REQUEST,
        {"jobid": jobid, "placement": dict(placement)},
        TAG_MIGRATE_REPLY,
        at,
    )
    if not wait:
        return handle
    handle.wait()
    reply = handle.result()
    if not reply.get("ok"):
        raise RestartError(reply.get("error", "migration failed"))
    job = universe.job(reply["jobid"])
    universe.run_job_to_completion(job)
    return job


def ompi_ps(universe: "Universe") -> list[dict]:
    """List jobs known to the HNP (like the paper's ompi-ps)."""
    handle = _launch_tool(universe, TAG_PS_REQUEST, {}, TAG_PS_REPLY, None)
    handle.wait()
    return handle.result()["jobs"]
