"""``ompi-info`` analogue: inspect frameworks, components, parameters.

Open MPI ships ``ompi_info`` so users can see which components a build
offers and which MCA parameters steer them.  This reproduction's
version introspects the component registry and the conventional
parameter surface — handy in examples and for validating that a forced
selection (``--mca crs self``) names something real before launching.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mca.registry import FrameworkRegistry, default_registry

#: parameters each component/framework documents (name, default, help)
KNOWN_PARAMS: dict[str, list[tuple[str, str, str]]] = {
    "crs": [
        ("crs", "simcr", "force CRS component selection"),
        ("crs_simcr_portable", "1", "allow simcr images to restart across OS tags"),
    ],
    "snapc": [
        ("snapc", "full", "force SNAPC component selection"),
        ("snapc_full_ready_grace", "0.05", "seconds to wait for in-flight readiness"),
        ("snapc_full_checkpoint_every", "0", "periodic checkpoint cadence in sim seconds (0 = off; the adaptive scheduler's cold-start fallback)"),
        ("snapc_sched_adaptive", "0", "re-tune the cadence per tick to the Young/Daly interval sqrt(2*MTBF*C)"),
        ("snapc_sched_min_every", "0.05", "lower clamp of the adaptive cadence (sim seconds)"),
        ("snapc_sched_max_every", "1.0", "upper clamp of the adaptive cadence (sim seconds; 0 = uncapped)"),
        ("snapc_stage_admission_tokens", "0", "universe-wide cap on concurrent staging transfers across all jobs (0 = unlimited)"),
        ("snapc_stage_admission_Bps", "0", "aggregate staging bandwidth budget shared by all jobs, bytes/sec (0 = unlimited)"),
    ],
    "filem": [
        ("filem", "rsh", "force FILEM component selection"),
        ("filem_rsh_session_cost", "0.020", "rsh session setup latency (s)"),
        ("filem_rsh_max_concurrent", "4", "concurrent remote copies"),
    ],
    "plm": [
        ("plm", "rsh", "force PLM component selection"),
        ("plm_rsh_session_cost", "0.030", "rsh launch session latency (s)"),
        ("plm_rsh_num_concurrent", "8", "concurrent node contacts"),
        ("plm_slurm_jobid", "", "set to select the slurm launcher"),
        ("plm_slurm_step_cost", "0.005", "slurm step latency (s)"),
    ],
    "pml": [
        ("pml", "ob1", "force PML component selection"),
        ("pml_ob1_eager_limit", "65536", "eager/rendezvous threshold (bytes)"),
    ],
    "btl": [
        ("btl", "tcp,ib,sm", "BTL include list"),
        ("btl_ib_disable", "0", "disable the InfiniBand BTL"),
    ],
    "crcp": [
        ("crcp", "coord", "force CRCP component selection"),
    ],
    "coll": [
        ("coll", "basic", "force COLL component selection"),
        ("coll_basic_bcast_algorithm", "binomial", "bcast: binomial|linear"),
        ("coll_basic_reduce_algorithm", "binomial", "reduce: binomial|linear"),
    ],
}

#: non-framework (base) parameters
BASE_PARAMS: list[tuple[str, str, str]] = [
    ("ompi_cr_enabled", "1", "build with C/R support (wrapper PML installed)"),
    ("orte_errmgr_autorecover", "0", "restart failed jobs from their last snapshot"),
    ("orte_errmgr_max_recoveries", "5", "restart attempts allowed per job lineage"),
    ("orte_errmgr_backoff", "0.05", "base recovery retry backoff in sim seconds (doubles per retry)"),
    ("orte_hnp_failover", "0", "surviving orteds elect a new HNP when the HNP's node dies"),
    ("orte_hnp_heartbeat_s", "0.25", "failover-window probe cadence in sim seconds (no timers while the HNP is healthy)"),
    ("statestore_enabled", "(orte_hnp_failover)", "journal control-plane state to stable storage (defaults to the failover switch)"),
    ("statestore_root", "/universe/statestore", "stable-storage directory of the control-plane store (base.json + wal/)"),
    ("statestore_wal_max_records", "256", "WAL records accumulated before compaction into base.json"),
    ("statestore_retry_s", "0.05", "writer retry backoff after a stable-storage fault, sim seconds"),
]


@dataclass
class FrameworkInfo:
    name: str
    components: list[str]
    params: list[tuple[str, str, str]] = field(default_factory=list)


def collect_info(registry: FrameworkRegistry | None = None) -> list[FrameworkInfo]:
    """Gather the framework/component/parameter inventory."""
    registry = registry or default_registry()
    out = []
    for name in registry.framework_names:
        out.append(
            FrameworkInfo(
                name=name,
                components=registry.framework(name).component_names,
                params=list(KNOWN_PARAMS.get(name, [])),
            )
        )
    return out


def component_exists(framework: str, component: str) -> bool:
    registry = default_registry()
    if framework not in registry:
        return False
    return component in registry.framework(framework).component_names


def render_info(infos: list[FrameworkInfo] | None = None) -> str:
    """Human-readable ompi_info-style listing."""
    infos = infos if infos is not None else collect_info()
    lines = ["MCA frameworks and components:"]
    for info in infos:
        lines.append(f"  {info.name}: {', '.join(info.components)}")
        for key, default, help_text in info.params:
            lines.append(f"      {key} (default {default!r}) — {help_text}")
    lines.append("base parameters:")
    for key, default, help_text in BASE_PARAMS:
        lines.append(f"      {key} (default {default!r}) — {help_text}")
    return "\n".join(lines)
