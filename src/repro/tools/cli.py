"""Demo command-line entry points.

The real system's tools operate on live jobs; in this reproduction the
whole cluster is simulated in-process, so each CLI builds a small
universe, demonstrates its operation end-to-end, and prints the result.
They exist to give the paper's tool workflow a tangible shape::

    ompi-run --app jacobi --np 4
    ompi-checkpoint         # run + checkpoint + report the reference
    ompi-restart            # run + checkpoint --term + restart from ref
    ompi-ps                 # job table after a run
"""

from __future__ import annotations

import argparse

from repro.mca.params import MCAParams
from repro.orte.universe import Universe
from repro.simenv.cluster import Cluster, ClusterSpec
from repro.tools.api import (
    checkpoint_ref,
    ompi_checkpoint,
    ompi_ps,
    ompi_restart,
    ompi_run,
)
from repro.util.errors import RestartError


def _universe(n_nodes: int = 4, **params) -> Universe:
    base = MCAParams({"filem": "rsh"})
    base.update(params)
    return Universe(Cluster(ClusterSpec(n_nodes=n_nodes)), base)


def _common_parser(description: str) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument("--app", default="jacobi", help="registered app name")
    parser.add_argument("--np", type=int, default=4, help="number of ranks")
    parser.add_argument("--nodes", type=int, default=4, help="cluster size")
    return parser


def main_run(argv=None) -> int:
    args = _common_parser("Launch an MPI job on a simulated cluster.").parse_args(argv)
    universe = _universe(args.nodes)
    job = ompi_run(universe, args.app, args.np)
    print(f"job {job.jobid} ({args.app}, np={args.np}) -> {job.state.value}")
    for rank in sorted(job.results):
        print(f"  rank {rank}: {job.results[rank]}")
    return 0 if job.state.value == "finished" else 1


def main_checkpoint(argv=None) -> int:
    parser = _common_parser("Run a job and checkpoint it mid-flight.")
    parser.add_argument("--at", type=float, default=0.05, help="sim time of request")
    parser.add_argument(
        "--wait-stable",
        action="store_true",
        help="reply only after the snapshot is committed to stable "
        "storage (old synchronous behaviour)",
    )
    args = parser.parse_args(argv)
    universe = _universe(args.nodes)
    job = ompi_run(
        universe,
        args.app,
        args.np,
        args={"n_global": 256, "iters": 60000},
        wait=False,
    )
    handle = ompi_checkpoint(
        universe, job.jobid, at=args.at, wait=False,
        wait_stable=args.wait_stable,
    )
    universe.run_job_to_completion(job)
    reply = handle.result()
    if reply.get("ok"):
        print(f"global snapshot reference: {reply['snapshot']}")
        return 0
    print(f"checkpoint failed: {reply.get('error')}")
    return 1


def main_restart(argv=None) -> int:
    parser = _common_parser("Checkpoint-and-terminate a job, then restart it.")
    parser.add_argument("--at", type=float, default=0.05, help="sim time of request")
    args = parser.parse_args(argv)
    universe = _universe(args.nodes)
    job = ompi_run(
        universe,
        args.app,
        args.np,
        args={"n_global": 256, "iters": 60000},
        wait=False,
    )
    handle = ompi_checkpoint(
        universe, job.jobid, at=args.at, terminate=True, wait=False
    )
    universe.run_job_to_completion(job)
    ref = checkpoint_ref(handle)
    print(f"halted into snapshot {ref.path}; restarting...")
    try:
        new_job = ompi_restart(universe, ref)
    except RestartError as exc:
        # A failed or never-committed staging interval is a user-facing
        # condition, not a crash: one line, non-zero exit, and the fix.
        print(f"ompi-restart: {exc}")
        print(
            "hint: that interval never committed to stable storage; "
            "pass an earlier committed interval's snapshot reference "
            "(ompi-ps lists them)."
        )
        return 1
    print(f"restarted as job {new_job.jobid} -> {new_job.state.value}")
    for rank in sorted(new_job.results):
        print(f"  rank {rank}: {new_job.results[rank]}")
    return 0 if new_job.state.value == "finished" else 1


def main_info(argv=None) -> int:
    """ompi_info analogue: list frameworks, components, parameters."""
    from repro.tools.info import render_info

    argparse.ArgumentParser(
        description="List MCA frameworks, components, and parameters."
    ).parse_args(argv)
    print(render_info())
    return 0


def main_migrate(argv=None) -> int:
    """Demo of ompi-migrate: vacate a node mid-run."""
    parser = _common_parser("Migrate a running job off one node.")
    parser.add_argument("--at", type=float, default=0.08, help="sim time of request")
    parser.add_argument("--vacate", default="node01", help="node to drain")
    args = parser.parse_args(argv)
    from repro.tools.api import ompi_migrate

    universe = _universe(args.nodes)
    job = ompi_run(
        universe,
        args.app,
        args.np,
        args={"n_global": 256, "iters": 60000},
        wait=False,
    )
    node_names = [node.name for node in universe.cluster.nodes]
    if args.vacate not in node_names:
        print(f"unknown node {args.vacate!r}; cluster has {node_names}")
        return 1
    target = next(name for name in node_names if name != args.vacate)
    # Ranks land on nodes round-robin by index; vacate by position in
    # the cluster list rather than parsing the node name.
    vacate_index = node_names.index(args.vacate)
    placement = {
        rank: target
        for rank in range(args.np)
        if rank % args.nodes == vacate_index
    }
    handle = ompi_migrate(universe, job.jobid, placement, at=args.at, wait=False)
    reply = handle.wait_stepped()
    if not reply.get("ok"):
        print(f"migration failed: {reply.get('error')}")
        return 1
    migrated = universe.job(reply["jobid"])
    universe.run_job_to_completion(migrated)
    print(
        f"job {job.jobid} migrated to job {migrated.jobid} "
        f"({migrated.state.value}); placements: {migrated.placements}"
    )
    return 0 if migrated.state.value == "finished" else 1


def _main_trace_fleet(argv) -> int:
    """``ompi-trace fleet``: run the demo campaign fleet and print the
    cross-run meta-report (see docs/FLEET.md)."""
    import json

    from repro.fleet import FleetRunner
    from repro.fleet.presets import demo_fleet
    from repro.obs.report import render_fleet_report

    parser = argparse.ArgumentParser(
        prog="ompi-trace fleet",
        description="Run the demo campaign fleet grid and print the "
        "cross-run meta-report.",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="process-pool width (1 = serial, same results either way)",
    )
    parser.add_argument(
        "--seeds", type=int, nargs="+", default=[0],
        help="seed replicas to sweep",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the fleet meta-report JSON to PATH",
    )
    args = parser.parse_args(argv)
    spec = demo_fleet(seeds=tuple(args.seeds))
    report = FleetRunner(spec, progress=print).run(workers=args.workers)
    print(render_fleet_report(report.to_dict()))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"fleet report written to {args.json}")
    return 0 if all(cell.ok for cell in report.cells) else 1


def _main_trace_failover(argv) -> int:
    """``ompi-trace failover``: crash the HNP's node mid-campaign and
    print the control-plane failover cost breakdown."""
    from repro.obs.report import FAILOVER_PHASES, render_phase_report
    from repro.simenv.campaign import (
        FAULT_HNP_CRASH,
        CampaignSpec,
        FaultSpec,
        run_campaign,
    )

    parser = argparse.ArgumentParser(
        prog="ompi-trace failover",
        description="Run a checkpointing job under an hnp_crash fault "
        "campaign and report the per-phase failover costs "
        "(state-store appends, election, rehydration).",
    )
    parser.add_argument("--np", type=int, default=4, help="number of ranks")
    parser.add_argument("--nodes", type=int, default=6, help="cluster size")
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the raw trace JSON to PATH",
    )
    args = parser.parse_args(argv)
    universe = _universe(
        args.nodes,
        obs_trace_enabled="1",
        orte_hnp_failover="1",
        orte_errmgr_autorecover="1",
        snapc_full_checkpoint_every="0.15",
    )
    job = ompi_run(
        universe,
        "churn",
        args.np,
        args={"loops": 150, "compute_s": 0.01, "state_bytes": 1 << 20},
        wait=False,
    )
    spec = CampaignSpec(
        mtbf_s=0.3,
        max_failures=1,
        start_at=0.3,
        faults=(FaultSpec(kind=FAULT_HNP_CRASH),),
    )
    report = run_campaign(universe, job, spec)
    trace = universe.kernel.tracer.to_dict()
    print(
        f"campaign: completed={report.completed} "
        f"failovers={universe.failovers} faults={report.fault_counts}"
    )
    print(
        render_phase_report(
            trace,
            title="HNP failover per-phase breakdown",
            phases=FAILOVER_PHASES,
        )
    )
    if args.json:
        universe.kernel.tracer.write_json(args.json)
        print(f"trace written to {args.json}")
    return 0 if report.completed and universe.failovers >= 1 else 1


def main_trace(argv=None) -> int:
    """ompi-trace: run + checkpoint with the span recorder on, then
    print the per-phase cost breakdown (and optionally dump the JSON).
    ``ompi-trace fleet ...`` instead runs a whole campaign fleet and
    prints its cross-run meta-report; ``ompi-trace failover ...`` runs
    an HNP-crash campaign and prints the failover phase table."""
    import sys

    from repro.obs.report import render_phase_report

    arg_list = list(sys.argv[1:] if argv is None else argv)
    if arg_list[:1] == ["fleet"]:
        return _main_trace_fleet(arg_list[1:])
    if arg_list[:1] == ["failover"]:
        return _main_trace_failover(arg_list[1:])

    parser = _common_parser(
        "Run a job, checkpoint it with tracing enabled, and report "
        "per-phase checkpoint costs."
    )
    parser.add_argument("--at", type=float, default=0.05, help="sim time of request")
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the raw trace JSON to PATH",
    )
    args = parser.parse_args(arg_list)
    universe = _universe(args.nodes, obs_trace_enabled="1")
    job = ompi_run(
        universe,
        args.app,
        args.np,
        args={"n_global": 256, "iters": 60000},
        wait=False,
    )
    handle = ompi_checkpoint(universe, job.jobid, at=args.at, wait=False)
    universe.run_job_to_completion(job)
    reply = handle.result()
    if not reply.get("ok"):
        print(f"checkpoint failed: {reply.get('error')}")
        return 1
    trace = universe.kernel.tracer.to_dict()
    print(f"global snapshot reference: {reply['snapshot']}")
    print(render_phase_report(trace, title="checkpoint per-phase breakdown"))
    if args.json:
        universe.kernel.tracer.write_json(args.json)
        print(f"trace written to {args.json}")
    return 0


def main_ps(argv=None) -> int:
    args = _common_parser("Run a job, then print the HNP job table.").parse_args(argv)
    universe = _universe(args.nodes)
    ompi_run(universe, args.app, args.np)
    for row in ompi_ps(universe):
        print(
            f"job {row['jobid']:>3}  {row['app']:<14} np={row['np']:<3} "
            f"{row['state']:<10} snapshots={len(row['snapshots'])}"
        )
    return 0
