"""Command-line-tool analogues.

The paper's asynchronous interface: ``ompi-checkpoint`` and
``ompi-restart`` are external tools that talk to mpirun over OOB
(Figure 1-A), enabling system administrators and schedulers to
checkpoint a user's job *without knowing how it was started* — every
needed detail lives in the global snapshot reference.

:func:`ompi_run` is the mpirun front-end; all four tools have both a
programmatic API (used by tests/benches) and a demo CLI
(:mod:`repro.tools.cli`).
"""

from repro.tools.api import (
    ToolHandle,
    ompi_checkpoint,
    ompi_ps,
    ompi_restart,
    ompi_run,
)

__all__ = [
    "ToolHandle",
    "ompi_checkpoint",
    "ompi_ps",
    "ompi_restart",
    "ompi_run",
]
