"""OPAL — Open Portable Access Layer (bottom of the three-layer stack).

Hosts what the paper puts at OPAL: the single-process
checkpoint/restart service framework (**CRS**, section 6.4), the OPAL
entry point that begins interlayer notification (Figure 2), and the
per-process image-contributor registry that stands in for "process
memory" in this simulated reproduction.
"""

from repro.opal.layer import CheckpointRequest, ImageContributor, OpalLayer

__all__ = ["CheckpointRequest", "ImageContributor", "OpalLayer"]
