"""OPAL layer object: one per simulated process.

Responsibilities (paper sections 5.5, 6.4, 6.5):

* open the CRS framework and expose checkpoint enable/disable — in
  Open MPI checkpointing is enabled at the end of ``MPI_INIT`` and
  disabled on entry to ``MPI_FINALIZE``;
* own the INC stack and register the bottom-most (OPAL) INC;
* own the *image contributor* registry.  A real CRS (BLCR) captures
  all process memory implicitly; our simulated CRS instead gathers
  explicit state contributions from each subsystem that owns
  process-image state (the application runner, the PML matching
  engine, the CRCP bookmarks);
* implement ``entry_point`` — the function the checkpoint notification
  thread calls to run Figure 2's sequence: INC(CHECKPOINT) down the
  stack, take the checkpoint via CRS, INC(CONTINUE or HALT) back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Protocol, runtime_checkable

from repro.core.ft_event import FTState, drive_ft_event
from repro.core.inc import INCStack
from repro.simenv.kernel import SimGen
from repro.util.errors import CheckpointError, NotCheckpointableError
from repro.util.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover
    from repro.mca.params import MCAParams
    from repro.mca.registry import FrameworkRegistry
    from repro.opal.crs.base import CRSComponent
    from repro.simenv.process import SimProcess
    from repro.vfs.fsbase import FS

log = get_logger("opal.layer")


@runtime_checkable
class ImageContributor(Protocol):
    """A subsystem owning process-image state."""

    image_key: str

    def capture_image_state(self, crs_name: str) -> Any:
        """Return picklable state for the image taken by *crs_name*."""
        ...  # pragma: no cover - protocol

    def restore_image_state(self, state: Any) -> None:
        """Reinstall previously captured state in a fresh process."""
        ...  # pragma: no cover - protocol


@dataclass
class CheckpointRequest:
    """One checkpoint request as seen by a single process."""

    interval: int
    target_fs: "FS"
    snapshot_dir: str
    terminate: bool = False
    options: dict = field(default_factory=dict)


class OpalLayer:
    """Per-process OPAL state."""

    SERVICE_KEY = "opal"

    def __init__(
        self,
        proc: "SimProcess",
        registry: "FrameworkRegistry",
        params: "MCAParams",
    ):
        self.proc = proc
        self.registry = registry
        self.params = params
        self.inc_stack = INCStack()
        self.inc_stack.tracer = proc.kernel.tracer
        self.inc_stack.owner = proc.label
        self.contributors: dict[str, ImageContributor] = {}
        self.checkpoint_enabled = False
        self.checkpoint_in_progress = False
        #: chunk-hash cache of the last snapshot taken by this process
        #: ({"interval", "chunk_bytes", "hashes"}) — lets the next
        #: incremental request emit only changed chunks
        self.incr_chunk_cache: dict[str, Any] | None = None
        #: SELF-component application callbacks (checkpoint/continue/restart)
        self.self_callbacks: dict[str, Any] = {}
        self.crs: "CRSComponent" = registry.framework("crs").open(
            params, context=self
        )
        self.inc_stack.register("opal", self._opal_inc)
        proc.register_service(self.SERVICE_KEY, self)

    # -- contributors ---------------------------------------------------------

    def register_contributor(self, contributor: ImageContributor) -> None:
        key = contributor.image_key
        if key in self.contributors:
            raise ValueError(f"image contributor {key!r} already registered")
        self.contributors[key] = contributor

    # -- enable/disable ----------------------------------------------------------

    def enable_checkpoint(self) -> None:
        """Called at the end of MPI_INIT (paper section 6.4)."""
        self.checkpoint_enabled = True

    def disable_checkpoint(self) -> None:
        """Called on entry to MPI_FINALIZE."""
        self.checkpoint_enabled = False

    # -- INC -----------------------------------------------------------------

    def _opal_inc(self, state: FTState, down) -> SimGen:
        # Bottom of the stack: nothing below, then notify the CRS
        # component itself (it may hold open file handles etc.).
        yield from down(state)
        yield from drive_ft_event(self.crs, state)

    # -- Figure 2: the entry point -----------------------------------------------

    def entry_point(self, request: CheckpointRequest) -> SimGen:
        """Run the full single-process checkpoint sequence.

        Returns ``(LocalSnapshotRef, LocalSnapshotMeta)``.
        """
        if not self.checkpoint_enabled:
            raise NotCheckpointableError([self.proc.label])
        if self.checkpoint_in_progress:
            raise CheckpointError(
                f"{self.proc.label}: checkpoint already in progress"
            )
        self.checkpoint_in_progress = True
        prepared = False
        try:
            yield from self.inc_stack.invoke(FTState.CHECKPOINT)
            prepared = True
            ref, meta = yield from self.crs.checkpoint(self, request)
            post = FTState.HALT if request.terminate else FTState.CONTINUE
            yield from self.inc_stack.invoke(post)
            return ref, meta
        except CheckpointError:
            if prepared:
                # The library is quiesced (gates closed, IB down) but
                # the checkpoint failed; roll forward to CONTINUE so the
                # process resumes unharmed (the section 5.1 guarantee).
                yield from self.inc_stack.invoke(FTState.CONTINUE)
            raise
        finally:
            self.checkpoint_in_progress = False

    def restart_notify(self) -> SimGen:
        """Run INC(RESTART) in a freshly reconstructed process."""
        yield from self.inc_stack.invoke(FTState.RESTART)
        return None

    # -- restore -------------------------------------------------------------

    def restore_contributors(self, image: dict[str, Any]) -> None:
        """Reinstall captured subsystem state (restart path).

        Contributors registered but absent from the image are left at
        their freshly initialized defaults; image keys with no
        registered contributor are an error (the process would silently
        lose state).
        """
        for key, state in image.items():
            contributor = self.contributors.get(key)
            if contributor is None:
                raise CheckpointError(
                    f"{self.proc.label}: image has state for unknown "
                    f"contributor {key!r}"
                )
            contributor.restore_image_state(state)
