"""CRS framework base: API every checkpointer component implements.

The paper (section 5.4) requires exactly two operations —

* ``checkpoint(pid)`` → local snapshot reference,
* ``restart(local snapshot reference)`` → a process resumed from it —

plus the ability to *enable and disable checkpointing* to protect
non-checkpointable code sections.  In this reproduction ``restart`` is
split in two because the new process is created by the ORTE launcher:
``restart_extract`` reads and decodes the image (this framework's job),
and the launcher feeds the decoded image to the new process's layers.
"""

from __future__ import annotations

import pickle
from typing import TYPE_CHECKING, Any

from repro.mca.component import Component
from repro.simenv.kernel import SimGen
from repro.snapshot import (
    LocalSnapshotMeta,
    LocalSnapshotRef,
    read_local_meta,
    write_local_meta,
)
from repro.util.errors import CheckpointError, RestartError
from repro.vfs import path as vpath

if TYPE_CHECKING:  # pragma: no cover
    from repro.mca.registry import FrameworkRegistry
    from repro.opal.layer import CheckpointRequest, OpalLayer
    from repro.vfs.fsbase import FS


class CRSComponent(Component):
    """Base class of CRS components."""

    framework_name = "crs"
    #: whether images can be restarted on a node with a different OS tag
    portable_images = True

    # -- required API ----------------------------------------------------------

    def can_checkpoint(self, opal: "OpalLayer") -> bool:
        """Does this component support checkpointing this process?"""
        return True

    def capture(self, opal: "OpalLayer", request: "CheckpointRequest") -> dict[str, Any]:
        """Assemble the in-memory process image.  Subclasses override."""
        raise NotImplementedError

    def restore(self, opal: "OpalLayer", image: dict[str, Any]) -> None:
        """Reinstall a decoded image into a fresh process's layers."""
        opal.restore_contributors(image)

    # -- framework-level flow (shared by components) -----------------------------

    def checkpoint(self, opal: "OpalLayer", request: "CheckpointRequest") -> SimGen:
        """Take a local snapshot; returns ``(ref, meta)``.

        Writes ``image.pkl`` and ``metadata.json`` into
        ``request.snapshot_dir`` on ``request.target_fs``, paying the
        serialization and disk costs.
        """
        if not self.can_checkpoint(opal):
            raise CheckpointError(
                f"CRS {self.name!r} cannot checkpoint {opal.proc.label}"
            )
        tracer = opal.proc.kernel.tracer
        rank = opal.proc.name.vpid
        span = tracer.begin("crs.capture", cat="crs", rank=rank, crs=self.name)
        image = self.capture(opal, request)
        span.end()
        span = tracer.begin("crs.serialize", cat="crs", rank=rank, crs=self.name)
        try:
            blob = pickle.dumps(image, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise CheckpointError(
                f"{opal.proc.label}: image not picklable: {exc}"
            ) from exc
        finally:
            span.end()
        fs = request.target_fs
        fs.mkdir(request.snapshot_dir)
        ref = LocalSnapshotRef(fs_name=fs.name, path=request.snapshot_dir)
        span = tracer.begin(
            "crs.write", cat="crs", rank=rank, crs=self.name,
            fs=fs.name, bytes=len(blob),
        )
        yield from fs.write(ref.image_path, blob)
        meta = LocalSnapshotMeta(
            rank=opal.proc.name.vpid,
            jobid=opal.proc.name.jobid,
            crs_component=self.name,
            origin_node=opal.proc.node.name,
            os_tag=opal.proc.node.os_tag,
            interval=request.interval,
            sim_time=opal.proc.kernel.now,
            portable=self.portable_images,
            app_params=dict(request.options),
            files=[vpath.basename(ref.image_path)],
        )
        yield from write_local_meta(fs, ref, meta)
        span.end()
        return ref, meta

    def restart_extract(self, fs: "FS", ref: LocalSnapshotRef) -> SimGen:
        """Read a local snapshot; returns ``(meta, image_dict)``."""
        meta = yield from read_local_meta(fs, ref)
        if meta.crs_component != self.name:
            raise RestartError(
                f"snapshot {ref.path} was taken by CRS "
                f"{meta.crs_component!r}, not {self.name!r}"
            )
        blob = yield from fs.read(ref.image_path)
        try:
            image = pickle.loads(blob)
        except Exception as exc:
            raise RestartError(f"corrupt image at {ref.image_path}: {exc}") from exc
        return meta, image


def register_crs_components(registry: "FrameworkRegistry") -> None:
    from repro.opal.crs.none_crs import NoneCRS
    from repro.opal.crs.self_cb import SelfCRS
    from repro.opal.crs.simcr import SimCR

    registry.add_component("crs", SimCR)
    registry.add_component("crs", SelfCRS)
    registry.add_component("crs", NoneCRS)
