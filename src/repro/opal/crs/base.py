"""CRS framework base: API every checkpointer component implements.

The paper (section 5.4) requires exactly two operations —

* ``checkpoint(pid)`` → local snapshot reference,
* ``restart(local snapshot reference)`` → a process resumed from it —

plus the ability to *enable and disable checkpointing* to protect
non-checkpointable code sections.  In this reproduction ``restart`` is
split in two because the new process is created by the ORTE launcher:
``restart_extract`` reads and decodes the image (this framework's job),
and the launcher feeds the decoded image to the new process's layers.
"""

from __future__ import annotations

import pickle
from typing import TYPE_CHECKING, Any

from repro.mca.component import Component
from repro.opal.crs import chunks as chunkstore
from repro.simenv.kernel import Delay, SimGen
from repro.snapshot import (
    IMAGE_FILE,
    LocalSnapshotMeta,
    LocalSnapshotRef,
    read_local_meta,
    write_local_meta,
)
from repro.util.errors import CheckpointError, RestartError
from repro.vfs import path as vpath

if TYPE_CHECKING:  # pragma: no cover
    from repro.mca.registry import FrameworkRegistry
    from repro.opal.layer import CheckpointRequest, OpalLayer
    from repro.vfs.fsbase import FS


class CRSComponent(Component):
    """Base class of CRS components."""

    framework_name = "crs"
    #: whether images can be restarted on a node with a different OS tag
    portable_images = True

    # -- required API ----------------------------------------------------------

    def can_checkpoint(self, opal: "OpalLayer") -> bool:
        """Does this component support checkpointing this process?"""
        return True

    def capture(self, opal: "OpalLayer", request: "CheckpointRequest") -> dict[str, Any]:
        """Assemble the in-memory process image.  Subclasses override."""
        raise NotImplementedError

    def restore(self, opal: "OpalLayer", image: dict[str, Any]) -> None:
        """Reinstall a decoded image into a fresh process's layers."""
        opal.restore_contributors(image)

    # -- framework-level flow (shared by components) -----------------------------

    def checkpoint(self, opal: "OpalLayer", request: "CheckpointRequest") -> SimGen:
        """Take a local snapshot; returns ``(ref, meta)``.

        Writes the image plus ``metadata.json`` into
        ``request.snapshot_dir`` on ``request.target_fs``, paying the
        serialization and disk costs.  When the request asks for an
        incremental snapshot (``options["incremental"]``) and this
        process holds a chunk-hash cache for the requested base
        interval, only the chunks that changed since the base are
        written (a **delta**); otherwise a full image is written.
        """
        if not self.can_checkpoint(opal):
            raise CheckpointError(
                f"CRS {self.name!r} cannot checkpoint {opal.proc.label}"
            )
        tracer = opal.proc.kernel.tracer
        rank = opal.proc.name.vpid
        span = tracer.begin("crs.capture", cat="crs", rank=rank, crs=self.name)
        image = self.capture(opal, request)
        span.end()
        span = tracer.begin("crs.serialize", cat="crs", rank=rank, crs=self.name)
        try:
            blob = pickle.dumps(image, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise CheckpointError(
                f"{opal.proc.label}: image not picklable: {exc}"
            ) from exc
        finally:
            span.end()
        fs = request.target_fs
        fs.mkdir(request.snapshot_dir)
        ref = LocalSnapshotRef(fs_name=fs.name, path=request.snapshot_dir)

        options = request.options or {}
        want_delta = bool(options.get("incremental"))
        base_interval = options.get("base_interval")
        chunk_bytes = self.params.get_int(
            "crs_base_chunk_bytes", chunkstore.DEFAULT_CHUNK_BYTES
        )
        chunks = chunkstore.split_chunks(blob, chunk_bytes)
        hash_span = tracer.begin(
            "crs.hash", cat="crs", rank=rank, bytes=len(blob)
        )
        hash_Bps = self.params.get_float("crs_base_hash_Bps", 4e9)
        if hash_Bps > 0:
            yield Delay(len(blob) / hash_Bps)
        hashes = [chunkstore.hash_chunk(c) for c in chunks]
        hash_span.end()

        cache = getattr(opal, "incr_chunk_cache", None)
        use_delta = (
            want_delta
            and cache is not None
            and base_interval is not None
            and cache.get("interval") == base_interval
            and cache.get("chunk_bytes") == chunk_bytes
        )
        if use_delta:
            dirty = chunkstore.diff_chunks(hashes, cache["hashes"])
            written = sum(len(chunks[i]) for i in dirty)
            span = tracer.begin(
                "crs.write", cat="crs", rank=rank, crs=self.name,
                fs=fs.name, bytes=written, kind="delta", chunks=len(dirty),
            )
            yield from chunkstore.write_delta(
                fs, request.snapshot_dir, chunks, hashes, dirty,
                chunk_bytes, request.interval, base_interval,
            )
            kind = chunkstore.KIND_DELTA
            files = [chunkstore.chunk_filename(i) for i in sorted(dirty)]
            present = sorted(dirty)
        else:
            written = len(blob)
            span = tracer.begin(
                "crs.write", cat="crs", rank=rank, crs=self.name,
                fs=fs.name, bytes=written, kind="full",
            )
            yield from fs.write(ref.image_path, blob)
            yield from chunkstore.write_full_manifest(
                fs, request.snapshot_dir, chunk_bytes, len(blob),
                hashes, request.interval,
            )
            kind = chunkstore.KIND_FULL
            files = [vpath.basename(ref.image_path)]
            base_interval = None
            present = list(range(len(hashes)))
        # Remember this interval's chunk shape so the next incremental
        # request can diff against it.
        opal.incr_chunk_cache = {
            "interval": request.interval,
            "chunk_bytes": chunk_bytes,
            "hashes": hashes,
        }

        meta = LocalSnapshotMeta(
            rank=opal.proc.name.vpid,
            jobid=opal.proc.name.jobid,
            crs_component=self.name,
            origin_node=opal.proc.node.name,
            os_tag=opal.proc.node.os_tag,
            interval=request.interval,
            sim_time=opal.proc.kernel.now,
            portable=self.portable_images,
            app_params={
                k: v for k, v in options.items()
                if k not in ("incremental", "base_interval")
            },
            files=files + [chunkstore.CHUNK_MANIFEST],
            kind=kind,
            base_interval=base_interval if kind == chunkstore.KIND_DELTA else None,
            written_bytes=written,
            chunk_bytes=chunk_bytes,
            total_bytes=len(blob),
            chunk_hashes=list(hashes),
            present_chunks=present,
        )
        yield from write_local_meta(fs, ref, meta)
        span.end()
        return ref, meta

    def restart_extract(self, fs: "FS", ref: LocalSnapshotRef) -> SimGen:
        """Read a single local snapshot; returns ``(meta, image_dict)``."""
        result = yield from self.restart_extract_chain(fs, [ref])
        return result

    def restart_extract_chain(
        self, fs: "FS", refs: list[LocalSnapshotRef]
    ) -> SimGen:
        """Read a local snapshot through its delta chain.

        ``refs`` is ordered oldest → newest; the newest entry is the
        snapshot to restore.  Full snapshots (and pre-incremental
        layouts) work with a single-entry chain; delta snapshots are
        reconstructed by overlaying changed chunks onto the nearest
        full base.  Returns ``(meta, image_dict)`` for the newest ref.
        """
        if not refs:
            raise RestartError("empty snapshot chain")
        newest = refs[-1]
        meta = yield from read_local_meta(fs, newest)
        if meta.crs_component != self.name:
            raise RestartError(
                f"snapshot {newest.path} was taken by CRS "
                f"{meta.crs_component!r}, not {self.name!r}"
            )
        blob, _manifest = yield from chunkstore.reconstruct_chain(
            fs, [r.path for r in refs], IMAGE_FILE
        )
        try:
            image = pickle.loads(blob)
        except Exception as exc:
            raise RestartError(
                f"corrupt image at {newest.path}: {exc}"
            ) from exc
        return meta, image


def register_crs_components(registry: "FrameworkRegistry") -> None:
    from repro.opal.crs.none_crs import NoneCRS
    from repro.opal.crs.self_cb import SelfCRS
    from repro.opal.crs.simcr import SimCR

    registry.add_component("crs", SimCR)
    registry.add_component("crs", SelfCRS)
    registry.add_component("crs", NoneCRS)
