"""``self`` — application-level checkpointing via user callbacks.

Mirrors LAM/MPI's and Open MPI's SELF component (paper sections 2 and
6.4): the application registers ``checkpoint``, ``continue`` and
``restart`` callbacks.  At checkpoint time the *checkpoint* callback
produces the application's own state; library subsystems are still
captured through their contributors (the library cannot rely on the
user to save the matching engine).  At restart the *restart* callback
receives the saved state and the application is responsible for
resuming from it; after a checkpoint on the surviving process the
*continue* callback runs.

Callbacks are registered through
:meth:`repro.apps.appkit.AppContext.register_self_callbacks` (the
public API) which stores them on the OPAL layer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.mca.component import component_of
from repro.core.ft_event import FTState
from repro.opal.crs.base import CRSComponent
from repro.util.errors import CheckpointError

if TYPE_CHECKING:  # pragma: no cover
    from repro.opal.layer import CheckpointRequest, OpalLayer

#: key under which the user state is stored inside the image dict
SELF_STATE_KEY = "crs.self.user_state"


@component_of("crs", "self", priority=10)
class SelfCRS(CRSComponent):
    """User-callback checkpointer."""

    def __init__(self, params=None):
        super().__init__(params)
        self._opal: "OpalLayer | None" = None

    def open(self, context: object | None = None) -> None:
        super().open(context)
        self._opal = context  # the OpalLayer

    def can_checkpoint(self, opal: "OpalLayer") -> bool:
        return "checkpoint" in opal.self_callbacks

    def capture(self, opal: "OpalLayer", request: "CheckpointRequest") -> dict[str, Any]:
        cb = opal.self_callbacks.get("checkpoint")
        if cb is None:
            raise CheckpointError(
                f"{opal.proc.label}: CRS 'self' selected but no "
                "checkpoint callback registered"
            )
        image: dict[str, Any] = {SELF_STATE_KEY: cb()}
        for key, contributor in sorted(opal.contributors.items()):
            state = contributor.capture_image_state(self.name)
            if state is not None:
                image[key] = state
        return image

    def restore(self, opal: "OpalLayer", image: dict[str, Any]) -> None:
        image = dict(image)
        user_state = image.pop(SELF_STATE_KEY, None)
        opal.restore_contributors(image)
        # Stash the user state; the restart callback consumes it when
        # the application main starts (AppRunner hands it over).
        opal.self_callbacks["_restored_state"] = user_state

    def ft_event(self, state: int) -> None:
        """Run the continue/restart user callbacks at the right times."""
        if self._opal is None:
            return
        callbacks = self._opal.self_callbacks
        if state == FTState.CONTINUE and "continue" in callbacks:
            callbacks["continue"]()
        elif state == FTState.RESTART and "restart" in callbacks:
            callbacks["restart"](callbacks.get("_restored_state"))
