"""OPAL CRS — the single-process Checkpoint/Restart Service framework.

One component interfaces the framework API to each available
checkpointer (paper section 6.4).  This reproduction ships:

* ``simcr`` — the BLCR analogue: captures a complete process image
  (application record-replay log + every registered library
  contributor) with no application involvement.
* ``self`` — application-level checkpointing via registered
  checkpoint/continue/restart callbacks.
* ``none`` — no checkpointer; the process reports itself
  not-checkpointable, exercising the SNAPC veto path (section 5.1).
"""

from repro.opal.crs.base import CRSComponent, register_crs_components
from repro.opal.crs.none_crs import NoneCRS
from repro.opal.crs.self_cb import SelfCRS
from repro.opal.crs.simcr import SimCR

__all__ = [
    "CRSComponent",
    "register_crs_components",
    "NoneCRS",
    "SelfCRS",
    "SimCR",
]
