"""``none`` — checkpointing unavailable.

Selected when a machine has no checkpointer (or forced with
``--mca crs none``).  Processes running this component identify
themselves as *not checkpointable*; the snapshot coordinator must then
reject any request that includes them without affecting any process
(paper section 5.1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.mca.component import component_of
from repro.opal.crs.base import CRSComponent
from repro.util.errors import CheckpointError

if TYPE_CHECKING:  # pragma: no cover
    from repro.opal.layer import CheckpointRequest, OpalLayer


@component_of("crs", "none", priority=0)
class NoneCRS(CRSComponent):
    """The null checkpointer."""

    def can_checkpoint(self, opal: "OpalLayer") -> bool:
        return False

    def capture(self, opal: "OpalLayer", request: "CheckpointRequest") -> dict[str, Any]:
        raise CheckpointError(
            f"{opal.proc.label}: CRS 'none' cannot take checkpoints"
        )
