"""``simcr`` — the BLCR analogue for the simulated world.

BLCR captures the entire memory of a process transparently.  Our
simulated equivalent captures *every* registered image contributor
(application record-replay log, PML matching state, CRCP bookmarks,
RNG identities) with zero application involvement, which preserves the
property that matters: the application does not need to know it is
being checkpointed.

Like BLCR, images are tied to the origin platform unless declared
portable: ``crs_simcr_portable`` (default on in the simulation, since
"binary" images here are pickles) controls whether restart on a node
with a different ``os_tag`` is permitted — the heterogeneity gate of
paper section 4.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.mca.component import component_of
from repro.opal.crs.base import CRSComponent

if TYPE_CHECKING:  # pragma: no cover
    from repro.opal.layer import CheckpointRequest, OpalLayer


@component_of("crs", "simcr", priority=20)
class SimCR(CRSComponent):
    """System-level (transparent) checkpointer."""

    def open(self, context: object | None = None) -> None:
        super().open(context)
        self.portable_images = self.params.get_bool("crs_simcr_portable", True)

    def capture(self, opal: "OpalLayer", request: "CheckpointRequest") -> dict[str, Any]:
        image: dict[str, Any] = {}
        for key, contributor in sorted(opal.contributors.items()):
            image[key] = contributor.capture_image_state(self.name)
        return image
