"""Chunked image store: the incremental-checkpoint file format.

A local snapshot's image is stored as a sequence of fixed-size chunks
described by a ``chunks.json`` manifest.  A **full** snapshot carries
the whole image (``image.pkl``) plus a manifest listing every chunk's
hash; a **delta** snapshot carries only the chunks that changed since
the base interval (``chunk_<i>.bin``) plus a manifest that still lists
*every* chunk's hash, so any reader can verify a reconstruction.

Reconstruction walks a chain of snapshot directories newest → oldest
until it finds a full image, then overlays each delta's present chunks
in interval order.  The chain may mix kinds per rank (a rank with no
chunk cache falls back to a full image inside a globally-delta
interval); reconstruction handles that per directory.

These helpers are shared by the CRS components (capture side), the
restart path (reconstruction side), and the SNAPC staging coordinator
(compaction side), so the format lives in exactly one place.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field

from repro.simenv.kernel import SimGen
from repro.snapshot import pack_hashes, unpack_hashes
from repro.util.errors import RestartError, SnapshotError
from repro.vfs import path as vpath
from repro.vfs.fsbase import FS

CHUNK_MANIFEST = "chunks.json"
DEFAULT_CHUNK_BYTES = 64 * 1024

KIND_FULL = "full"
KIND_DELTA = "delta"


def chunk_filename(index: int) -> str:
    return f"chunk_{index:06d}.bin"


def split_chunks(blob: bytes, chunk_bytes: int) -> list[bytes]:
    if chunk_bytes <= 0:
        raise ValueError("chunk_bytes must be positive")
    return [blob[i : i + chunk_bytes] for i in range(0, len(blob), chunk_bytes)] or [
        b""
    ]


def hash_chunk(chunk: bytes) -> str:
    return hashlib.sha256(chunk).hexdigest()




@dataclass
class ChunkManifest:
    """Contents of a snapshot directory's ``chunks.json``."""

    kind: str
    chunk_bytes: int
    total_bytes: int
    #: every chunk's hash at this interval (full image shape)
    hashes: list[str] = field(default_factory=list)
    #: chunk indices physically present in this directory
    present: list[int] = field(default_factory=list)
    #: interval this delta diffs against (None for full images)
    base_interval: int | None = None
    interval: int = 0

    @property
    def n_chunks(self) -> int:
        return len(self.hashes)

    def to_json(self) -> bytes:
        # Serialized by hand: asdict() deep-copies every hash string,
        # and JSON-encoding thousands of 64-char strings per manifest
        # dominates capture cost.  Hashes travel as one packed hex
        # string; a full image's ``present`` (the whole range) packs to
        # null.
        present: "list[int] | None" = self.present
        if present == list(range(len(self.hashes))):
            present = None
        return json.dumps(
            {
                "kind": self.kind,
                "chunk_bytes": self.chunk_bytes,
                "total_bytes": self.total_bytes,
                "hashes": pack_hashes(self.hashes),
                "present": present,
                "base_interval": self.base_interval,
                "interval": self.interval,
            },
            sort_keys=True,
        ).encode()

    @classmethod
    def from_json(cls, raw: bytes) -> "ChunkManifest":
        try:
            data = json.loads(raw.decode())
            data["hashes"] = unpack_hashes(data.get("hashes", []))
            if data.get("present") is None:
                data["present"] = list(range(len(data["hashes"])))
            return cls(**data)
        except (ValueError, TypeError, KeyError) as exc:
            raise SnapshotError(f"bad chunk manifest: {exc}") from exc


def manifest_path(snapshot_dir: str) -> str:
    return vpath.join(snapshot_dir, CHUNK_MANIFEST)


def write_manifest(fs: FS, snapshot_dir: str, manifest: ChunkManifest) -> SimGen:
    yield from fs.write(manifest_path(snapshot_dir), manifest.to_json())
    return manifest


def read_manifest(fs: FS, snapshot_dir: str) -> SimGen:
    raw = yield from fs.read(manifest_path(snapshot_dir))
    return ChunkManifest.from_json(raw)


def has_manifest(fs: FS, snapshot_dir: str) -> bool:
    return fs.exists(manifest_path(snapshot_dir))


def diff_chunks(hashes: list[str], base_hashes: list[str]) -> list[int]:
    """Indices of chunks that differ from (or extend past) the base."""
    return [
        i
        for i, digest in enumerate(hashes)
        if i >= len(base_hashes) or base_hashes[i] != digest
    ]


def write_delta(
    fs: FS,
    snapshot_dir: str,
    chunks: list[bytes],
    hashes: list[str],
    dirty: list[int],
    chunk_bytes: int,
    interval: int,
    base_interval: int,
) -> SimGen:
    """Write only the dirty chunks plus the manifest; returns manifest.

    The write cost is proportional to the dirty bytes — the point of
    incremental checkpointing.
    """
    total = sum(len(c) for c in chunks)
    for index in dirty:
        yield from fs.write(
            vpath.join(snapshot_dir, chunk_filename(index)), chunks[index]
        )
    manifest = ChunkManifest(
        kind=KIND_DELTA,
        chunk_bytes=chunk_bytes,
        total_bytes=total,
        hashes=list(hashes),
        present=sorted(dirty),
        base_interval=base_interval,
        interval=interval,
    )
    yield from write_manifest(fs, snapshot_dir, manifest)
    return manifest


def write_full_manifest(
    fs: FS,
    snapshot_dir: str,
    chunk_bytes: int,
    total_bytes: int,
    hashes: list[str],
    interval: int,
) -> SimGen:
    manifest = ChunkManifest(
        kind=KIND_FULL,
        chunk_bytes=chunk_bytes,
        total_bytes=total_bytes,
        hashes=list(hashes),
        present=list(range(len(hashes))),
        base_interval=None,
        interval=interval,
    )
    yield from write_manifest(fs, snapshot_dir, manifest)
    return manifest


def reconstruct_chain(fs: FS, chain_dirs: list[str], image_file: str) -> SimGen:
    """Rebuild the newest image from a base + delta directory chain.

    ``chain_dirs`` is ordered oldest → newest; the newest entry is the
    target interval.  Returns ``(blob, manifest)`` where *manifest* is
    the newest directory's manifest.  Raises :class:`RestartError` if
    no full base exists in the chain or the reconstruction does not
    verify against the manifest hashes.
    """
    if not chain_dirs:
        raise RestartError("empty snapshot chain")
    newest = chain_dirs[-1]
    if not has_manifest(fs, newest):
        # Pre-incremental snapshot layout: plain full image.
        blob = yield from fs.read(vpath.join(newest, image_file))
        return blob, None
    final = yield from read_manifest(fs, newest)

    # Walk back to the nearest full image for this rank.
    start = None
    base_manifest: ChunkManifest | None = None
    for pos in range(len(chain_dirs) - 1, -1, -1):
        directory = chain_dirs[pos]
        if not has_manifest(fs, directory):
            start = pos  # legacy full image
            break
        manifest = yield from read_manifest(fs, directory)
        if manifest.kind == KIND_FULL:
            start = pos
            base_manifest = manifest
            break
    if start is None:
        raise RestartError(
            f"snapshot chain for {newest} has no full base image"
        )

    base_dir = chain_dirs[start]
    blob = yield from fs.read(vpath.join(base_dir, image_file))
    if start == len(chain_dirs) - 1:
        return blob, final

    # Each directory's overlay indices are relative to *its own*
    # chunk_bytes (``crs_base_chunk_bytes`` may change between
    # intervals), so the base is split per the base's geometry and the
    # image is re-split whenever a delta uses a different chunk size.
    # A legacy manifest-less base has no geometry of its own; it adopts
    # the first delta's.
    chunk_bytes = None if base_manifest is None else base_manifest.chunk_bytes
    chunks = None if chunk_bytes is None else split_chunks(blob, chunk_bytes)
    for directory in chain_dirs[start + 1 :]:
        manifest = yield from read_manifest(fs, directory)
        if manifest.kind == KIND_FULL:
            blob = yield from fs.read(vpath.join(directory, image_file))
            chunk_bytes = manifest.chunk_bytes
            chunks = split_chunks(blob, chunk_bytes)
            continue
        if chunks is None or chunk_bytes != manifest.chunk_bytes:
            if chunks is not None:
                blob = b"".join(chunks)
            chunk_bytes = manifest.chunk_bytes
            chunks = split_chunks(blob, chunk_bytes)
        # Grow/shrink to the delta's chunk count, then overlay.
        n = manifest.n_chunks
        if len(chunks) < n:
            chunks.extend([b""] * (n - len(chunks)))
        elif len(chunks) > n:
            del chunks[n:]
        for index in manifest.present:
            data = yield from fs.read(
                vpath.join(directory, chunk_filename(index))
            )
            chunks[index] = data

    blob = b"".join(chunks)
    if len(blob) != final.total_bytes:
        raise RestartError(
            f"reconstructed image is {len(blob)} bytes, manifest says "
            f"{final.total_bytes} ({newest})"
        )
    for index, chunk in enumerate(chunks):
        if hash_chunk(chunk) != final.hashes[index]:
            raise RestartError(
                f"reconstructed chunk {index} of {newest} fails verification"
            )
    return blob, final


def load_chunks(
    fs: FS,
    snapshot_dir: str,
    manifest: ChunkManifest,
    indices: list[int],
    image_file: str,
) -> SimGen:
    """Read selected chunk payloads out of one snapshot directory.

    Full directories store the image as a single file, so it is read
    once and sliced per the manifest's geometry; delta directories
    store individual chunk files and can only serve the indices listed
    in ``manifest.present``.  Returns ``{index: bytes}``.  This is the
    provider side of the CAS ship protocol.
    """
    want = sorted(set(indices))
    payloads: dict[int, bytes] = {}
    if not want:
        return payloads
    if manifest.kind == KIND_FULL:
        blob = yield from fs.read(vpath.join(snapshot_dir, image_file))
        chunks = split_chunks(blob, manifest.chunk_bytes)
        for index in want:
            if index >= len(chunks):
                raise SnapshotError(
                    f"chunk {index} out of range for {snapshot_dir}"
                )
            payloads[index] = chunks[index]
        return payloads
    present = set(manifest.present)
    for index in want:
        if index not in present:
            raise SnapshotError(
                f"chunk {index} not present in delta {snapshot_dir}"
            )
        payloads[index] = yield from fs.read(
            vpath.join(snapshot_dir, chunk_filename(index))
        )
    return payloads
