"""repro — Checkpoint/Restart Process Fault Tolerance for a simulated Open MPI.

Reproduction of Hursey, Squyres, Mattox & Lumsdaine (IPPS 2007).

Public API (see README for a tour):

* :class:`repro.simenv.Cluster` / :class:`repro.simenv.ClusterSpec` — build a
  simulated machine room.
* :func:`repro.tools.ompi_run` — launch an MPI job (mpirun analogue).
* :func:`repro.tools.ompi_checkpoint` / :func:`repro.tools.ompi_restart` —
  asynchronous checkpoint/restart tools.
* :mod:`repro.apps` — application kit (``AppContext``) and sample workloads.
* :mod:`repro.core` — ft_event states, INC registration, synchronous
  checkpoint API.
"""

__version__ = "1.0.0"

from repro.simenv.cluster import Cluster, ClusterSpec
from repro.mca.params import MCAParams

__all__ = ["Cluster", "ClusterSpec", "MCAParams", "__version__"]
