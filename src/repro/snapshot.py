"""Snapshot references (paper section 4).

A *snapshot reference* is a single named handle to a checkpoint,
freeing the user from tracking checkpointer-specific file sets:

* **Local snapshot reference** — one process's checkpoint: a directory
  holding a ``metadata.json`` (which checkpointer was used, application
  parameters, interval number, origin node/OS) plus the checkpointer's
  own files (here: ``image.pkl``).
* **Global snapshot reference** — one distributed checkpoint: a
  directory holding a ``metadata.json`` (aggregated local references,
  last-known ranks, *runtime parameters*, global interval) plus the
  physical local snapshots, one per process.

Because the runtime parameters and application identity are recorded
at checkpoint time, ``ompi-restart`` needs nothing beyond the global
reference — the paper's usability point.

References are serialized as JSON into the simulated filesystems.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from functools import lru_cache

from repro.simenv.kernel import SimGen
from repro.util.errors import SnapshotError
from repro.vfs import path as vpath
from repro.vfs.fsbase import FS

LOCAL_META = "metadata.json"
GLOBAL_META = "metadata.json"
IMAGE_FILE = "image.pkl"

HASH_HEX_LEN = 64  # sha256 hexdigest width


def pack_hashes(hashes: "list[str]") -> "str | list[str]":
    """Join sha256 hex digests into one string for JSON transport.

    Encoding thousands of 64-char strings one by one dominates
    manifest/metadata serialization cost for finely chunked images.
    Lists holding anything other than full-width digests (test
    fixtures) pass through unpacked so the round trip is exact.
    """
    if not hashes or len(hashes[0]) != HASH_HEX_LEN:
        return hashes
    packed = "".join(hashes)
    if len(packed) != HASH_HEX_LEN * len(hashes):
        return hashes
    return packed


@lru_cache(maxsize=512)
def _split_packed(packed: str) -> tuple:
    return tuple(
        packed[i : i + HASH_HEX_LEN]
        for i in range(0, len(packed), HASH_HEX_LEN)
    )


def unpack_hashes(packed: "str | list[str]") -> list[str]:
    """Inverse of :func:`pack_hashes`; accepts both wire forms.

    Splits are memoized — every rank of a job writes the same image in
    the fleet benchmarks, so the same packed string is re-read per rank
    per restart.
    """
    if isinstance(packed, str):
        return list(_split_packed(packed))
    return list(packed)


@dataclass
class LocalSnapshotMeta:
    """Metadata describing a single-process snapshot."""

    rank: int
    jobid: int
    crs_component: str
    origin_node: str
    os_tag: str
    interval: int
    sim_time: float
    portable: bool = True
    app_params: dict = field(default_factory=dict)
    files: list[str] = field(default_factory=list)
    #: "full" or "delta" (incremental checkpointing)
    kind: str = "full"
    #: interval a delta image diffs against (None for full images)
    base_interval: int | None = None
    #: bytes physically written for this snapshot (full image or delta)
    written_bytes: int = 0
    #: CAS-ready manifest summary (chunk geometry + every chunk's
    #: digest); empty on pre-CAS snapshots
    chunk_bytes: int = 0
    total_bytes: int = 0
    chunk_hashes: list[str] = field(default_factory=list)
    #: chunk indices physically present in the snapshot directory
    present_chunks: list[int] = field(default_factory=list)

    def to_json(self) -> bytes:
        # Built by hand rather than via asdict(): asdict deep-copies
        # every chunk hash string, which dominates metadata-write cost
        # for finely chunked images.
        return json.dumps(
            {
                "rank": self.rank,
                "jobid": self.jobid,
                "crs_component": self.crs_component,
                "origin_node": self.origin_node,
                "os_tag": self.os_tag,
                "interval": self.interval,
                "sim_time": self.sim_time,
                "portable": self.portable,
                "app_params": self.app_params,
                "files": self.files,
                "kind": self.kind,
                "base_interval": self.base_interval,
                "written_bytes": self.written_bytes,
                "chunk_bytes": self.chunk_bytes,
                "total_bytes": self.total_bytes,
                "chunk_hashes": pack_hashes(self.chunk_hashes),
                "present_chunks": self.present_chunks,
            },
            sort_keys=True,
        ).encode()

    @classmethod
    def from_json(cls, raw: bytes) -> "LocalSnapshotMeta":
        try:
            data = json.loads(raw.decode())
            data["chunk_hashes"] = unpack_hashes(data.get("chunk_hashes", []))
            return cls(**data)
        except (ValueError, TypeError, KeyError) as exc:
            raise SnapshotError(f"bad local snapshot metadata: {exc}") from exc


#: staging lifecycle states persisted in global snapshot metadata
STAGE_STAGING = "staging"
STAGE_COMMITTED = "committed"
STAGE_FAILED = "failed"


@dataclass
class GlobalSnapshotMeta:
    """Metadata describing a whole-job snapshot."""

    jobid: int
    interval: int
    n_procs: int
    sim_time: float
    app_name: str
    app_args: dict = field(default_factory=dict)
    mca_params: dict = field(default_factory=dict)
    #: rank -> {"path": str, "node": str, "crs": str, "os_tag": str}
    locals: dict = field(default_factory=dict)
    #: "full" or "delta" — delta intervals carry only changed chunks
    kind: str = "full"
    #: previous interval in the delta chain (None for full intervals)
    base_interval: int | None = None
    #: global snapshot dirs this interval depends on, oldest full first
    #: (empty for full intervals)
    base_chain: list = field(default_factory=list)
    #: True when the interval's chunk bytes live in the content-addressed
    #: store and the rank directories hold only manifests + metadata
    cas: bool = False
    #: aggregation-to-stable-storage lifecycle of this interval
    #: ({"state": staging|committed|failed, "committed_sim_time", "error"})
    staging: dict = field(
        default_factory=lambda: {
            "state": STAGE_COMMITTED,
            "committed_sim_time": None,
            "error": None,
        }
    )

    def to_json(self) -> bytes:
        return json.dumps(asdict(self), sort_keys=True, indent=1).encode()

    @classmethod
    def from_json(cls, raw: bytes) -> "GlobalSnapshotMeta":
        try:
            data = json.loads(raw.decode())
            # JSON object keys are strings; normalize rank keys to int.
            data["locals"] = {int(k): v for k, v in data.get("locals", {}).items()}
            return cls(**data)
        except (ValueError, TypeError, KeyError) as exc:
            raise SnapshotError(f"bad global snapshot metadata: {exc}") from exc


@dataclass(frozen=True)
class LocalSnapshotRef:
    """Named reference to a local snapshot directory on some FS."""

    fs_name: str
    path: str

    @property
    def meta_path(self) -> str:
        return vpath.join(self.path, LOCAL_META)

    @property
    def image_path(self) -> str:
        return vpath.join(self.path, IMAGE_FILE)


@dataclass(frozen=True)
class GlobalSnapshotRef:
    """Named reference to a global snapshot directory on stable storage."""

    path: str

    @property
    def meta_path(self) -> str:
        return vpath.join(self.path, GLOBAL_META)

    def local_dir(self, rank: int) -> str:
        return vpath.join(self.path, f"rank{rank}")

    def __str__(self) -> str:  # pragma: no cover
        return self.path


def global_snapshot_dirname(jobid: int, interval: int) -> str:
    """Canonical global snapshot directory name."""
    return f"ompi_global_snapshot_{jobid}.{interval}"


def parse_global_dirname(path: str) -> tuple[int, int] | None:
    """``(jobid, interval)`` from a global snapshot path, or None."""
    name = path.rstrip("/").rsplit("/", 1)[-1]
    prefix = "ompi_global_snapshot_"
    if not name.startswith(prefix):
        return None
    try:
        jobid_s, interval_s = name[len(prefix):].split(".", 1)
        return int(jobid_s), int(interval_s)
    except ValueError:
        return None


# --------------------------------------------------------------------------
# Timed reader/writer helpers (generators)
# --------------------------------------------------------------------------


def write_local_meta(fs: FS, ref: LocalSnapshotRef, meta: LocalSnapshotMeta) -> SimGen:
    yield from fs.write(ref.meta_path, meta.to_json())
    return ref


def read_local_meta(fs: FS, ref: LocalSnapshotRef) -> SimGen:
    raw = yield from fs.read(ref.meta_path)
    return LocalSnapshotMeta.from_json(raw)


def write_global_meta(fs: FS, ref: GlobalSnapshotRef, meta: GlobalSnapshotMeta) -> SimGen:
    yield from fs.write(ref.meta_path, meta.to_json())
    return ref


def read_global_meta(fs: FS, ref: GlobalSnapshotRef) -> SimGen:
    if not fs.exists(ref.meta_path):
        raise SnapshotError(f"no global snapshot at {ref.path}")
    raw = yield from fs.read(ref.meta_path)
    return GlobalSnapshotMeta.from_json(raw)
