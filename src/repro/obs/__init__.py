"""Structured tracing and metrics for the C/R stack.

The paper's evaluation (§7) attributes checkpoint cost to distinct
phases — bookmark exchange, channel drain, CRS image write, FILEM
gather.  This package is the measurement substrate that makes those
numbers first-class: a :class:`~repro.obs.trace.TraceRecorder` hangs
off the DES kernel, every framework opens *spans* around its phases,
and the report helpers aggregate the span stream into per-phase
breakdown tables and a JSON export.

The recorder is disabled by default and its disabled path allocates
nothing, so the failure-free hot path is unaffected (the E1 NetPIPE
overhead criterion).
"""

from repro.obs.report import (
    filter_spans,
    load_json,
    phase_rows,
    render_kernel_stats,
    render_phase_report,
    summarize,
)
from repro.obs.trace import NULL_SPAN, Span, TraceRecorder
from repro.simenv.kernel import KernelStats

__all__ = [
    "NULL_SPAN",
    "KernelStats",
    "Span",
    "TraceRecorder",
    "filter_spans",
    "load_json",
    "phase_rows",
    "render_kernel_stats",
    "render_phase_report",
    "summarize",
]
