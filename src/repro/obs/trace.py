"""The trace recorder: spans + counters over the simulation kernel.

One recorder exists per :class:`~repro.simenv.kernel.Kernel`, shared by
every simulated process on that kernel — span streams from all five
frameworks of a universe interleave into a single timeline, exactly as
a cluster-wide trace collector would see them.  Each span records both
*simulated* time (``kernel.now``, what the experiments report) and
*wall-clock* time (``time.perf_counter()``, what the harness costs).

Span naming follows ``<framework>.<phase>``:

=====================  ====================================================
span name              opened around
=====================  ====================================================
``snapc.checkpoint``   the app-blocked window (Figure 1 A→F)
``snapc.fanout``       global→local request fan-out + acks (Figure 1 B–E)
``snapc.local``        one orted's local coordinator pass
``snapc.meta``         one global metadata write (per staging transition)
``snapc.stage``        background staging of one interval to stable storage
``crcp.coordinate``    one process's whole coordination
``crcp.bookmark``      the all-to-all bookmark exchange (``coord``)
``crcp.drain``         the channel drain loop
``crcp.quiesce``       waiting out the process's own in-flight sends
``crcp.round``         one aggregation round (``twophase``)
``crs.capture``        assembling the in-memory image
``crs.serialize``      pickling the image
``crs.hash``           the per-chunk hash pass (incremental)
``crs.write``          writing image or dirty chunks + metadata
``filem.transfer``     one per-entry copy (``rsh``; ``op`` says which)
``filem.gather``       a whole gather operation
``filem.stage_out``    a whole stage-out (gather + source cleanup)
``filem.broadcast``    a whole broadcast operation
``filem.offer``        one CAS negotiation (chunks offered vs missing)
``filem.ship``         shipping negotiated chunks into the CAS store
``filem.fetch``        rebuilding CAS-backed images on restart nodes
``inc.<layer>``        one layer's INC traversal (Figure 2 as data)
``errmgr.detect``      failure detection + survivor/staging teardown
``errmgr.recover``     one recovery attempt (snapshot pick → relaunch)
=====================  ====================================================

Disabled recorders hand out a shared :data:`NULL_SPAN` whose ``end`` is
a no-op, so instrumentation points cost one attribute check when
tracing is off.
"""

from __future__ import annotations

import json
import time
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.simenv.kernel import Kernel

#: schema version stamped into every JSON export
#: (v2 added the ``kernel_stats`` block)
TRACE_SCHEMA_VERSION = 2


class _NullSpan:
    """Stand-in handed out while tracing is disabled."""

    __slots__ = ()

    def end(self, **attrs: Any) -> None:
        return None

    def __repr__(self) -> str:  # pragma: no cover
        return "<NullSpan>"


NULL_SPAN = _NullSpan()


class Span:
    """One timed region; finished (and recorded) by :meth:`end`."""

    __slots__ = ("_recorder", "name", "cat", "attrs", "t0", "t1", "wall0", "wall1")

    def __init__(self, recorder: "TraceRecorder", name: str, cat: str, attrs: dict):
        self._recorder = recorder
        self.name = name
        self.cat = cat
        self.attrs = attrs
        self.t0 = recorder.kernel.now
        self.t1: float | None = None
        self.wall0 = time.perf_counter()
        self.wall1: float | None = None

    def end(self, **attrs: Any) -> None:
        """Close the span; extra attributes merge into the record.

        Idempotent — abort paths may race a normal close.
        """
        if self.t1 is not None:
            return
        self.t1 = self._recorder.kernel.now
        self.wall1 = time.perf_counter()
        if attrs:
            self.attrs.update(attrs)
        self._recorder._finish(self)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "cat": self.cat,
            "t0": self.t0,
            "t1": self.t1,
            "dur": (self.t1 or self.t0) - self.t0,
            "wall": (self.wall1 or self.wall0) - self.wall0,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:  # pragma: no cover
        state = "open" if self.t1 is None else f"dur={self.t1 - self.t0:.6f}"
        return f"<Span {self.name} {state}>"


class TraceRecorder:
    """Collects spans and counters for one kernel's lifetime."""

    def __init__(self, kernel: "Kernel", enabled: bool = False):
        self.kernel = kernel
        self.enabled = enabled
        self.spans: list[Span] = []
        self.counters: dict[str, float] = {}

    # -- switches ------------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        self.spans = []
        self.counters = {}

    # -- recording -----------------------------------------------------------

    def begin(self, name: str, cat: str | None = None, **attrs: Any):
        """Open a span; returns :data:`NULL_SPAN` when disabled."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, cat or name.split(".", 1)[0], attrs)

    def count(self, name: str, delta: float = 1) -> None:
        if self.enabled:
            self.counters[name] = self.counters.get(name, 0) + delta

    def _finish(self, span: Span) -> None:
        self.spans.append(span)

    # -- export --------------------------------------------------------------

    def to_dict(self) -> dict:
        """The JSON-shaped trace (see docs/OBSERVABILITY.md)."""
        return {
            "schema": TRACE_SCHEMA_VERSION,
            "sim_time_s": self.kernel.now,
            "spans": [span.to_dict() for span in self.spans],
            "counters": dict(self.counters),
            "kernel_stats": self.kernel.stats_snapshot(),
        }

    def write_json(self, path: str) -> None:
        """Write the trace to *path* on the host filesystem."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2)
