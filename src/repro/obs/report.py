"""Aggregation and rendering of trace exports.

All helpers operate on the JSON-shaped dict produced by
:meth:`~repro.obs.trace.TraceRecorder.to_dict` (or loaded back from a
file), so post-mortem analysis of a written trace and live analysis of
a just-finished run share one code path.
"""

from __future__ import annotations

import json
from typing import Any

#: the canonical per-phase breakdown order used by the benchmarks
DEFAULT_PHASES = [
    "crcp.bookmark",
    "crcp.drain",
    "crcp.quiesce",
    "crcp.round",
    "crs.hash",
    "crs.serialize",
    "crs.write",
    "filem.transfer",
    "filem.stage_out",
    "filem.offer",
    "filem.ship",
    "filem.fetch",
    "snapc.fanout",
    "snapc.meta",
    "snapc.admission",
    "snapc.stage",
    "errmgr.detect",
    "errmgr.recover",
    "statestore.append",
    "statestore.replay",
    "hnp.failover",
]

#: the control-plane failover breakdown (``ompi-trace failover``)
FAILOVER_PHASES = [
    "statestore.append",
    "statestore.compact",
    "statestore.replay",
    "hnp.election",
    "hnp.failover",
    "errmgr.detect",
    "errmgr.recover",
    "snapc.stage",
    "snapc.meta",
]


def load_json(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def filter_spans(
    trace: dict, name: str | None = None, cat: str | None = None, **attrs: Any
) -> list[dict]:
    """Spans matching a name, a category, and/or attribute values."""
    out = []
    for span in trace.get("spans", []):
        if name is not None and span["name"] != name:
            continue
        if cat is not None and span["cat"] != cat:
            continue
        span_attrs = span.get("attrs", {})
        if any(span_attrs.get(k) != v for k, v in attrs.items()):
            continue
        out.append(span)
    return out


def summarize(trace: dict) -> dict[str, dict]:
    """Aggregate spans by name: ``{name: {count, sim_s, wall_s}}``."""
    out: dict[str, dict] = {}
    for span in trace.get("spans", []):
        entry = out.setdefault(
            span["name"], {"count": 0, "sim_s": 0.0, "wall_s": 0.0}
        )
        entry["count"] += 1
        entry["sim_s"] += span["dur"]
        entry["wall_s"] += span["wall"]
    return out


def phase_rows(
    trace: dict, phases: list[str] | None = None
) -> list[tuple[str, int, float, float]]:
    """``(phase, count, sim_s, wall_s)`` rows for the requested phases.

    Phases absent from the trace appear with zero counts so tables stay
    shape-stable across configurations (e.g. ``shared`` FILEM moving no
    bytes).
    """
    summary = summarize(trace)
    rows = []
    for phase in phases or DEFAULT_PHASES:
        entry = summary.get(phase, {"count": 0, "sim_s": 0.0, "wall_s": 0.0})
        rows.append((phase, entry["count"], entry["sim_s"], entry["wall_s"]))
    return rows


def render_phase_report(
    trace: dict, title: str = "per-phase breakdown", phases: list[str] | None = None
) -> str:
    """Monospace per-phase table, the benchmarks' standard block."""
    rows = phase_rows(trace, phases)
    name_w = max([len("phase")] + [len(name) for name, *_ in rows])
    lines = [f"== {title} =="]
    header = (
        "phase".ljust(name_w) + "  " + "count".rjust(6)
        + "  " + "sim (ms)".rjust(10) + "  " + "wall (ms)".rjust(10)
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name, count, sim_s, wall_s in rows:
        lines.append(
            name.ljust(name_w)
            + f"  {count:>6d}  {sim_s * 1e3:>10.3f}  {wall_s * 1e3:>10.3f}"
        )
    counters = trace.get("counters") or {}
    for key in sorted(counters):
        lines.append(f"counter {key} = {counters[key]:g}")
    stats = trace.get("kernel_stats")
    if stats:
        lines.append(render_kernel_stats(stats))
    return "\n".join(lines)


def render_kernel_stats(stats: dict, title: str = "kernel stats") -> str:
    """Monospace block over a ``kernel_stats`` dict (see SIMULATOR.md)."""
    lines = [f"== {title} =="]
    order = [
        "events", "ready_hits", "heap_pushes", "heap_pops",
        "peak_heap", "peak_ready", "threads_spawned", "threads_reaped",
        "threads_live", "threads_dead", "waits_any", "waits_all",
        "run_wall_s", "run_cpu_s", "events_per_sec", "events_per_cpu_sec",
    ]
    keys = order + sorted(set(stats) - set(order))
    for key in keys:
        if key not in stats:
            continue
        value = stats[key]
        shown = f"{value:.3f}" if isinstance(value, float) else str(value)
        lines.append(f"{key:<18} {shown:>14}")
    return "\n".join(lines)


def render_fleet_report(fleet: dict, title: str | None = None) -> str:
    """Monospace meta-report over a fleet-run dict.

    Accepts the shape of :meth:`repro.fleet.report.FleetReport.to_dict`
    (also written to ``FLEET_E13.json``): one row per grid cell, the
    cross-run aggregate block, and the merged fleet-wide kernel stats.
    """
    cells = fleet.get("cells", {})
    key_w = max([len("cell")] + [len(key) for key in cells])
    header = (
        "cell".ljust(key_w) + "  " + "ok".rjust(2) + "  "
        + "done".rjust(5) + "  " + "faults".rjust(6) + "  "
        + "restarts".rjust(8) + "  " + "ckpts".rjust(5) + "  "
        + "makespan (s)".rjust(12) + "  " + "tries".rjust(5) + "  "
        + "wall (s)".rjust(8)
    )
    shown_title = title or (
        f"fleet {fleet.get('fleet', '?')}: "
        f"{fleet.get('workers', '?')} worker(s), "
        f"{fleet.get('wall_s', 0.0):.1f}s wall"
    )
    lines = [f"== {shown_title} ==", header, "-" * len(header)]
    for key in sorted(cells):
        cell = cells[key]
        report = cell.get("report") or {}
        lines.append(
            key.ljust(key_w)
            + f"  {'y' if cell.get('ok') else 'N':>2}"
            + f"  {str(bool(report.get('completed'))):>5}"
            + f"  {len(report.get('failures', [])):>6}"
            + f"  {report.get('restarts', 0):>8}"
            + f"  {report.get('committed_checkpoints', 0):>5}"
            + (
                f"  {report['makespan_s']:>12.4f}"
                if "makespan_s" in report
                else f"  {'-':>12}"
            )
            + f"  {cell.get('attempts', 1):>5}"
            + f"  {cell.get('wall_s', 0.0):>8.2f}"
        )
        if cell.get("error"):
            lines.append(" " * key_w + f"  ! {cell['error']}")
    if not cells:
        lines.append("(no cells)")
    agg = fleet.get("aggregate")
    if agg:
        lines.append(
            f"aggregate: {agg['ok']}/{agg['runs']} ok, "
            f"{agg['completed']} completed, {agg['faults']} faults, "
            f"{agg['restarts']} restarts, "
            f"{agg['committed_checkpoints']} ckpts committed, "
            f"{agg['work_lost_s'] * 1e3:.1f}ms work lost"
        )
    stats = fleet.get("kernel_stats")
    if stats:
        lines.append(render_kernel_stats(stats, title="fleet kernel stats"))
    return "\n".join(lines)


def render_recovery_report(
    records: list[dict], title: str = "recovery episodes"
) -> str:
    """Monospace table over recovery-episode dicts.

    Accepts the dict shape of
    :meth:`repro.orte.errmgr.RecoveryRecord.to_dict` (also embedded in
    ``CampaignReport.recoveries`` and ``BENCH_E9.json``).
    """
    header = (
        "failed".rjust(6) + "  " + "new".rjust(5) + "  "
        + "attempts".rjust(8) + "  " + "latency (ms)".rjust(12) + "  "
        + "lost (ms)".rjust(10) + "  " + "snapshot / error"
    )
    lines = [f"== {title} ==", header, "-" * len(header)]
    for rec in records:
        latency = rec.get("latency_s")
        lost = rec.get("work_lost_s")
        outcome = rec.get("snapshot") or rec.get("error") or "-"
        lines.append(
            f"{rec.get('failed_jobid', '?'):>6}  "
            + f"{rec.get('new_jobid') if rec.get('new_jobid') is not None else '-':>5}  "
            + f"{rec.get('attempts', 0):>8}  "
            + (f"{latency * 1e3:>12.3f}  " if latency is not None else f"{'-':>12}  ")
            + (f"{lost * 1e3:>10.3f}  " if lost is not None else f"{'-':>10}  ")
            + str(outcome)
        )
    if not records:
        lines.append("(no recovery episodes)")
    return "\n".join(lines)
